// Deterministic random number generation for the Monte-Carlo simulators.
//
// Every stochastic component in nwdec takes an explicit `rng&` so that whole
// experiments are reproducible from a single seed, and so that independent
// streams can be forked for parallel or per-trial use without correlation.
//
// Two forking schemes are provided:
//   * fork() draws the child seed from the parent's stream. It is
//     deterministic only for a fixed fork order, so it suits sequential
//     code that forks exactly once per consumer.
//   * from_counter(key, counter) / fork_stream(counter) derive the child
//     seed purely from (key, counter) with a splitmix64 finalizer. The
//     parent's state is never read or advanced, so stream `i` is the same
//     no matter which thread asks for it or in what order -- this is the
//     contract the multithreaded Monte-Carlo engine relies on to shard
//     trials across workers while staying bit-identical to a serial run:
//     trial i always consumes stream from_counter(run_key, i), where
//     run_key is drawn once from the caller's rng (so successive engine
//     invocations on one rng stay decorrelated).
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>

#include "util/error.h"

namespace nwdec {

/// Seeded pseudo-random generator wrapping std::mt19937_64 with the handful
/// of distributions the simulators need.
class rng {
 public:
  /// Creates a generator from a 64-bit seed. The same seed always produces
  /// the same stream on every platform (mt19937_64 is fully specified).
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : seed_(seed), engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi); requires lo < hi.
  double uniform(double lo, double hi) {
    NWDEC_EXPECTS(lo < hi, "uniform(lo, hi) requires lo < hi");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [0, n); requires n > 0.
  std::size_t index(std::size_t n) {
    NWDEC_EXPECTS(n > 0, "index(n) requires n > 0");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Normal deviate with the given mean and standard deviation (sigma >= 0).
  double gaussian(double mean, double sigma) {
    NWDEC_EXPECTS(sigma >= 0.0, "gaussian sigma must be non-negative");
    if (sigma == 0.0) return mean;
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Fills `out[0..count)` with standard-normal deviates drawn from one
  /// distribution instance, so the polar method's cached second deviate is
  /// used instead of discarded -- about half the underlying uniform draws
  /// of `count` separate gaussian() calls. The resulting stream therefore
  /// differs from repeated gaussian(0, 1) calls; batch consumers (the
  /// Monte-Carlo trial kernel) define their draw order in terms of this
  /// call.
  void standard_normal_fill(double* out, std::size_t count) {
    std::normal_distribution<double> normal(0.0, 1.0);
    for (std::size_t k = 0; k < count; ++k) out[k] = normal(engine_);
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) {
    NWDEC_EXPECTS(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0, 1]");
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Forks an independent child stream by drawing the child seed from this
  /// stream. Deterministic for a fixed fork order only; parallel code must
  /// use the counter-based scheme below instead.
  rng fork() {
    const std::uint64_t child_seed = engine_() ^ 0xd1b54a32d192ed03ULL;
    return rng(child_seed);
  }

  /// The seed from_counter(key, counter) constructs its child stream with:
  /// the raw splitmix64 mixing, without building a generator. Fingerprint
  /// cascades and the blocked trial kernel use this directly so deriving a
  /// stream identity never pays for an engine-state initialization.
  static std::uint64_t counter_seed(std::uint64_t key, std::uint64_t counter) {
    return mix(key + 0x9e3779b97f4a7c15ULL * (counter + 1));
  }

  /// Counter-based forking: an independent stream derived purely from
  /// (key, counter) via a splitmix64 finalizer. Distinct counters under one
  /// key give uncorrelated streams, and the mapping involves no generator
  /// state, so results are bit-identical regardless of thread count or
  /// evaluation order.
  static rng from_counter(std::uint64_t key, std::uint64_t counter) {
    return rng(counter_seed(key, counter));
  }

  /// from_counter keyed by this generator's construction seed; does not
  /// read or advance the stream.
  rng fork_stream(std::uint64_t counter) const {
    return from_counter(seed_, counter);
  }

  /// The seed this generator was constructed from (key for fork_stream).
  std::uint64_t seed() const { return seed_; }

  /// Access to the raw engine for std::shuffle and similar algorithms.
  std::mt19937_64& engine() { return engine_; }

 private:
  /// splitmix64 finalizer: bijective avalanche mixing of a 64-bit value
  /// (Steele, Lea & Flood); the standard seed-derivation function for
  /// counter-based stream families.
  static std::uint64_t mix(std::uint64_t z) {
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ULL;
    z ^= z >> 27;
    z *= 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z;
  }

  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

/// The blocked Monte-Carlo kernel's generator: mt19937_64 re-implemented
/// from its (fully standard-specified) recurrence, plus the exact draw
/// rules of the distributions the trial kernel consumes. Why it exists:
///
///   * The scalar engine derives one stream per trial, and std::mt19937_64
///     pays a fixed-cost state initialization plus per-draw bookkeeping
///     that dominates short streams (~200 draws per trial). block_rng
///     seeds in place, twists the state lazily in chunks (a trial that
///     stops mid-round never finishes the round), and fills deviate slabs
///     with an arbitrary output stride, so the batched kernel writes
///     structure-of-arrays layouts directly.
///   * Its raw output is bit-identical to std::mt19937_64 by construction
///     (the engine is specified exactly; the tests verify it), and its
///     canonical / bernoulli / standard_normal_fill draws replicate the
///     draw-for-draw behavior of rng's std distributions on this engine
///     (libstdc++'s generate_canonical / bernoulli / Marsaglia-polar
///     normal_distribution), pinned here as the repo's deviate contract:
///     canonical = u * 2^-64 clamped below 1; bernoulli(p) = canonical < p
///     (always one draw); normals come from polar pairs (x, y) of
///     canonicals with rejection on r2 = x^2 + y^2, emitting y*mult then
///     x*mult with mult = sqrt(-2 log(r2) / r2), a fresh pair state per
///     fill call. The rng_test suite asserts equality against the std
///     paths, so a standard library whose distributions diverge from this
///     contract fails loudly instead of silently changing results.
class block_rng {
 public:
  static constexpr std::size_t state_size = 312;

  /// Seeds in place; same state as std::mt19937_64{seed}.
  explicit block_rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    this->seed(seed);
  }

  /// Re-seeds this generator in place (no state copy, unlike assigning a
  /// freshly constructed object).
  void seed(std::uint64_t seed);

  /// Seeds `count` generators at once, interleaving four independent
  /// initialization recurrences per pass. Seeding is a serial
  /// multiply-chain (~6 cycles of loop-carried latency per state word);
  /// a trial block seeds many independent engines, so interleaving hides
  /// that latency behind throughput -- several times faster per engine
  /// than seeding one at a time, with bit-identical state.
  static void seed_block(block_rng* engines, const std::uint64_t* seeds,
                         std::size_t count);

  /// The stream rng::from_counter(key, counter) draws from.
  static block_rng from_counter(std::uint64_t key, std::uint64_t counter) {
    return block_rng(rng::counter_seed(key, counter));
  }

  /// Raw engine output; bit-identical to std::mt19937_64::operator().
  std::uint64_t next() {
    if (index_ >= twisted_) replenish();
    return temper(state_[index_++]);
  }

  /// std::generate_canonical<double, 53>(engine): one draw scaled by
  /// 2^-64, clamped to the largest double below 1 when the conversion
  /// rounds up to 1.
  double canonical() { return to_unit(next()); }

  /// std::bernoulli_distribution(p)(engine): one draw always, even at
  /// p == 0 -- the draw count is part of the stream contract.
  bool bernoulli(double p) { return canonical() < p; }

  /// Fills out[k * stride] for k in [0, count) with exactly the values
  /// `count` canonical() calls would produce, leaving the engine at the
  /// same position. The difference is wholesale: upcoming state words are
  /// peek-tempered and converted in bulk through the runtime-dispatched
  /// conversion kernels (util/rng_kernels.h), so consumers that need a run
  /// of uniforms -- the blocked trial kernel's defect/discard tails -- pay
  /// O(count) vector work instead of per-draw bookkeeping.
  void canonical_fill(double* out, std::size_t count, std::size_t stride = 1);

  /// Fills deviate k at out[k * stride] for k in [0, count) with exactly
  /// the standard normals rng::standard_normal_fill would produce from the
  /// same engine state (see the class comment for the pinned polar rule),
  /// leaving the engine positioned identically afterwards. stride > 1 lets
  /// the batched kernel scatter one trial's deviates down a lane column of
  /// a structure-of-arrays slab in the same pass that generates them.
  void standard_normal_fill(double* out, std::size_t count,
                            std::size_t stride = 1);

 private:
  /// mt19937_64's output tempering (pure -- state is not advanced, which
  /// lets the fill peek-temper a run of words and commit only what the
  /// rejection loop actually consumed).
  static std::uint64_t temper(std::uint64_t z) {
    z ^= (z >> 29) & 0x5555555555555555ULL;
    z ^= (z << 17) & 0x71d67fffeda60000ULL;
    z ^= (z << 37) & 0xfff7eee000000000ULL;
    z ^= z >> 43;
    return z;
  }

  /// Tempered word -> canonical in [0, 1), branch-free and bit-identical
  /// to libstdc++'s generate_canonical on this engine:
  ///   * u64 -> double via two exactly-representable 32-bit halves whose
  ///     single-rounding sum IS the correctly rounded double(u) -- no
  ///     sign-test branch (a 50/50 branch here, since engine output is
  ///     uniform over the full 64-bit range);
  ///   * the >= 1 clamp as a min: every double strictly below 1 is at most
  ///     1 - 2^-53, so min(value, 1 - 2^-53) only alters values that
  ///     rounded up to exactly 1.
  static double to_unit(std::uint64_t u) {
    const double exact =
        static_cast<double>(static_cast<std::uint32_t>(u >> 32)) *
            4294967296.0 +
        static_cast<double>(static_cast<std::uint32_t>(u));
    const double value = exact * 0x1p-64;
    return value < 0x1.fffffffffffffp-1 ? value : 0x1.fffffffffffffp-1;
  }

  /// Advances the lazy twist so at least one tempered word is available.
  void replenish();
  /// Twists words [twisted_, limit) of the current round in place.
  void twist_to(std::size_t limit);

  std::uint64_t state_[state_size];
  std::size_t index_ = state_size;    ///< next untempered word to emit
  std::size_t twisted_ = state_size;  ///< words of the current round twisted
};

/// The batched counter-based normal generator of the blocked Monte-Carlo
/// kernel: one pass that fills a contiguous deviate block for `trials`
/// streams at once, in lane-major (structure-of-arrays) layout -- deviate k
/// of trial t lands at lanes[k * lane_stride + t]. Row t receives exactly
/// the `count` deviates rng::from_counter(key, first + t) would produce
/// through standard_normal_fill (the per-(trial, region) deviate contract),
/// so a blocked consumer is bit-identical to a per-trial scalar one. When
/// `tails` is non-null it must hold `trials` generators; tails[t] is left
/// positioned immediately after trial t's deviates, so the caller can
/// continue each trial's stream (defect maps, discard Bernoullis)
/// bit-compatibly with the scalar path. Requires lane_stride >= trials.
void standard_normal_block(std::uint64_t key, std::uint64_t first,
                           std::size_t trials, std::size_t count,
                           double* lanes, std::size_t lane_stride,
                           block_rng* tails);

}  // namespace nwdec
