// Deterministic random number generation for the Monte-Carlo simulators.
//
// Every stochastic component in nwdec takes an explicit `rng&` so that whole
// experiments are reproducible from a single seed, and so that independent
// streams can be forked for parallel or per-trial use without correlation.
//
// Two forking schemes are provided:
//   * fork() draws the child seed from the parent's stream. It is
//     deterministic only for a fixed fork order, so it suits sequential
//     code that forks exactly once per consumer.
//   * from_counter(key, counter) / fork_stream(counter) derive the child
//     seed purely from (key, counter) with a splitmix64 finalizer. The
//     parent's state is never read or advanced, so stream `i` is the same
//     no matter which thread asks for it or in what order -- this is the
//     contract the multithreaded Monte-Carlo engine relies on to shard
//     trials across workers while staying bit-identical to a serial run:
//     trial i always consumes stream from_counter(run_key, i), where
//     run_key is drawn once from the caller's rng (so successive engine
//     invocations on one rng stay decorrelated).
#pragma once

#include <cstdint>
#include <random>

#include "util/error.h"

namespace nwdec {

/// Seeded pseudo-random generator wrapping std::mt19937_64 with the handful
/// of distributions the simulators need.
class rng {
 public:
  /// Creates a generator from a 64-bit seed. The same seed always produces
  /// the same stream on every platform (mt19937_64 is fully specified).
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : seed_(seed), engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi); requires lo < hi.
  double uniform(double lo, double hi) {
    NWDEC_EXPECTS(lo < hi, "uniform(lo, hi) requires lo < hi");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [0, n); requires n > 0.
  std::size_t index(std::size_t n) {
    NWDEC_EXPECTS(n > 0, "index(n) requires n > 0");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Normal deviate with the given mean and standard deviation (sigma >= 0).
  double gaussian(double mean, double sigma) {
    NWDEC_EXPECTS(sigma >= 0.0, "gaussian sigma must be non-negative");
    if (sigma == 0.0) return mean;
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Fills `out[0..count)` with standard-normal deviates drawn from one
  /// distribution instance, so the polar method's cached second deviate is
  /// used instead of discarded -- about half the underlying uniform draws
  /// of `count` separate gaussian() calls. The resulting stream therefore
  /// differs from repeated gaussian(0, 1) calls; batch consumers (the
  /// Monte-Carlo trial kernel) define their draw order in terms of this
  /// call.
  void standard_normal_fill(double* out, std::size_t count) {
    std::normal_distribution<double> normal(0.0, 1.0);
    for (std::size_t k = 0; k < count; ++k) out[k] = normal(engine_);
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) {
    NWDEC_EXPECTS(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0, 1]");
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Forks an independent child stream by drawing the child seed from this
  /// stream. Deterministic for a fixed fork order only; parallel code must
  /// use the counter-based scheme below instead.
  rng fork() {
    const std::uint64_t child_seed = engine_() ^ 0xd1b54a32d192ed03ULL;
    return rng(child_seed);
  }

  /// Counter-based forking: an independent stream derived purely from
  /// (key, counter) via a splitmix64 finalizer. Distinct counters under one
  /// key give uncorrelated streams, and the mapping involves no generator
  /// state, so results are bit-identical regardless of thread count or
  /// evaluation order.
  static rng from_counter(std::uint64_t key, std::uint64_t counter) {
    return rng(mix(key + 0x9e3779b97f4a7c15ULL * (counter + 1)));
  }

  /// from_counter keyed by this generator's construction seed; does not
  /// read or advance the stream.
  rng fork_stream(std::uint64_t counter) const {
    return from_counter(seed_, counter);
  }

  /// The seed this generator was constructed from (key for fork_stream).
  std::uint64_t seed() const { return seed_; }

  /// Access to the raw engine for std::shuffle and similar algorithms.
  std::mt19937_64& engine() { return engine_; }

 private:
  /// splitmix64 finalizer: bijective avalanche mixing of a 64-bit value
  /// (Steele, Lea & Flood); the standard seed-derivation function for
  /// counter-based stream families.
  static std::uint64_t mix(std::uint64_t z) {
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ULL;
    z ^= z >> 27;
    z *= 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z;
  }

  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace nwdec
