#include "util/failpoint.h"

#include <unistd.h>

#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "util/error.h"

namespace nwdec::failpoints {

namespace detail {

std::atomic<bool> g_active{false};

}  // namespace detail

namespace {

struct setting {
  action act = action::error;
  std::size_t skip = 0;  ///< hits left to let through before firing
  std::size_t hits = 0;
};

struct registry {
  std::mutex mutex;
  std::unordered_map<std::string, setting> armed;
  bool tracing = false;
  std::vector<std::string> trace;  ///< first-hit order, deduplicated
};

// Leaked on purpose: failpoints may be crossed from detached threads during
// process teardown, after function-local statics would have been destroyed.
registry& state() {
  static registry* instance = new registry();
  return *instance;
}

void refresh_active_locked(const registry& r) {
  detail::g_active.store(!r.armed.empty() || r.tracing,
                         std::memory_order_relaxed);
}

}  // namespace

namespace detail {

void hit(const char* name) {
  registry& r = state();
  action fire = action::error;
  bool fired = false;
  {
    const std::lock_guard<std::mutex> lock(r.mutex);
    if (r.tracing) {
      bool seen = false;
      for (const std::string& recorded : r.trace) {
        if (recorded == name) {
          seen = true;
          break;
        }
      }
      if (!seen) r.trace.emplace_back(name);
    }
    const auto found = r.armed.find(name);
    if (found == r.armed.end()) return;
    setting& s = found->second;
    ++s.hits;
    if (s.skip > 0) {
      --s.skip;
      return;
    }
    fire = s.act;
    fired = true;
  }
  if (!fired) return;
  if (fire == action::kill) {
    // Simulated kill -9: no destructors, no stream flush, no atexit --
    // whatever the code under test already handed to the kernel is all a
    // restart will find.
    ::_exit(kill_exit_code);
  }
  throw error(std::string("failpoint '") + name + "' fired");
}

}  // namespace detail

void arm(const std::string& name, action act, std::size_t skip) {
  NWDEC_EXPECTS(!name.empty(), "a failpoint name cannot be empty");
  registry& r = state();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.armed[name] = setting{act, skip, 0};
  refresh_active_locked(r);
}

void disarm(const std::string& name) {
  registry& r = state();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.armed.erase(name);
  refresh_active_locked(r);
}

void disarm_all() {
  registry& r = state();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.armed.clear();
  refresh_active_locked(r);
}

std::size_t hit_count(const std::string& name) {
  registry& r = state();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto found = r.armed.find(name);
  return found == r.armed.end() ? 0 : found->second.hits;
}

std::size_t arm_from_env(const char* variable) {
  const char* value = std::getenv(variable);
  if (value == nullptr || *value == '\0') return 0;
  const std::string list(value);
  std::size_t armed = 0;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    std::size_t end = list.find_first_of(";,", begin);
    if (end == std::string::npos) end = list.size();
    const std::string entry = list.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;

    const std::size_t equals = entry.find('=');
    NWDEC_EXPECTS(equals != std::string::npos && equals > 0,
                  "malformed failpoint entry '" + entry +
                      "' (expected name=error|kill[@skip])");
    const std::string name = entry.substr(0, equals);
    std::string spec = entry.substr(equals + 1);
    std::size_t skip = 0;
    const std::size_t at = spec.find('@');
    if (at != std::string::npos) {
      const std::string digits = spec.substr(at + 1);
      NWDEC_EXPECTS(!digits.empty() && digits.find_first_not_of(
                                           "0123456789") == std::string::npos,
                    "malformed failpoint skip count in '" + entry + "'");
      skip = static_cast<std::size_t>(std::stoull(digits));
      spec.erase(at);
    }
    action act;
    if (spec == "error") {
      act = action::error;
    } else if (spec == "kill") {
      act = action::kill;
    } else {
      throw invalid_argument_error("unknown failpoint action '" + spec +
                                   "' in '" + entry +
                                   "' (expected error | kill)");
    }
    arm(name, act, skip);
    ++armed;
  }
  return armed;
}

void set_trace(bool enabled) {
  registry& r = state();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.tracing = enabled;
  if (enabled) r.trace.clear();
  refresh_active_locked(r);
}

std::vector<std::string> trace() {
  registry& r = state();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return r.trace;
}

}  // namespace nwdec::failpoints
