// cpuid probe + dispatch-path resolution (see util/cpu.h for the contract).
#include "util/cpu.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "util/error.h"
#include "util/rng_kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace nwdec::cpu {

namespace {

// cpuid leaf 1 ECX/EDX and leaf 7 subleaf 0 EBX feature bits (Intel SDM
// vol. 2A, CPUID), plus the XCR0 state-component bits the OS must have
// enabled for the wider register files to be usable.
constexpr std::uint32_t leaf1_ecx_osxsave = 1u << 27;
constexpr std::uint32_t leaf1_ecx_avx = 1u << 28;
constexpr std::uint32_t leaf1_edx_sse2 = 1u << 26;
constexpr std::uint32_t leaf7_ebx_avx2 = 1u << 5;
constexpr std::uint32_t leaf7_ebx_avx512f = 1u << 16;
constexpr std::uint32_t leaf7_ebx_avx512bw = 1u << 30;
constexpr std::uint64_t xcr0_ymm_state = 0x6;   // XMM + YMM
constexpr std::uint64_t xcr0_zmm_state = 0xe0;  // opmask + ZMM_Hi256 + Hi16_ZMM

}  // namespace

cpu_features features_from_registers(std::uint32_t max_leaf,
                                     std::uint32_t leaf1_ecx,
                                     std::uint32_t leaf1_edx,
                                     std::uint32_t leaf7_ebx,
                                     std::uint64_t xcr0) {
  cpu_features f;
  f.sse2 = (leaf1_edx & leaf1_edx_sse2) != 0;
  const bool os_ymm = (leaf1_ecx & leaf1_ecx_osxsave) != 0 &&
                      (leaf1_ecx & leaf1_ecx_avx) != 0 &&
                      (xcr0 & xcr0_ymm_state) == xcr0_ymm_state;
  const bool has_leaf7 = max_leaf >= 7;
  f.avx2 = os_ymm && has_leaf7 && (leaf7_ebx & leaf7_ebx_avx2) != 0;
  const bool os_zmm = os_ymm && (xcr0 & xcr0_zmm_state) == xcr0_zmm_state;
  f.avx512f = os_zmm && has_leaf7 && (leaf7_ebx & leaf7_ebx_avx512f) != 0;
  f.avx512bw = f.avx512f && (leaf7_ebx & leaf7_ebx_avx512bw) != 0;
  return f;
}

namespace {

#if defined(__x86_64__) || defined(__i386__)
cpu_features probe() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  const unsigned max_leaf = __get_cpuid_max(0, nullptr);
  if (max_leaf < 1) return cpu_features{};
  __cpuid(1, eax, ebx, ecx, edx);
  const std::uint32_t leaf1_ecx = ecx;
  const std::uint32_t leaf1_edx = edx;
  std::uint32_t leaf7_ebx = 0;
  if (max_leaf >= 7) {
    __cpuid_count(7, 0, eax, ebx, ecx, edx);
    leaf7_ebx = ebx;
  }
  std::uint64_t xcr0 = 0;
  if (leaf1_ecx & leaf1_ecx_osxsave) {
    // XGETBV(0); raw encoding so no -mxsave build flag is needed (the
    // instruction predates the intrinsic's flag gating and is legal to
    // execute whenever OSXSAVE is set).
    std::uint32_t lo = 0, hi = 0;
    __asm__ volatile(".byte 0x0f, 0x01, 0xd0" : "=a"(lo), "=d"(hi) : "c"(0));
    xcr0 = (static_cast<std::uint64_t>(hi) << 32) | lo;
  }
  return features_from_registers(max_leaf, leaf1_ecx, leaf1_edx, leaf7_ebx,
                                 xcr0);
}
#else
cpu_features probe() { return cpu_features{}; }
#endif

}  // namespace

const cpu_features& detect() {
  static const cpu_features probed = probe();
  return probed;
}

std::string to_string(const cpu_features& features) {
  std::string out;
  const auto add = [&out](bool set, const char* name) {
    if (!set) return;
    if (!out.empty()) out += ',';
    out += name;
  };
  add(features.sse2, "sse2");
  add(features.avx2, "avx2");
  add(features.avx512f, "avx512f");
  add(features.avx512bw, "avx512bw");
  return out.empty() ? "none" : out;
}

const char* simd_path_name(simd_path path) {
  switch (path) {
    case simd_path::scalar:
      return "scalar";
    case simd_path::sse2:
      return "sse2";
    case simd_path::avx2:
      return "avx2";
    case simd_path::avx512:
      return "avx512";
  }
  return "scalar";
}

simd_path parse_simd_path(const std::string& name) {
  for (const simd_path path : {simd_path::scalar, simd_path::sse2,
                               simd_path::avx2, simd_path::avx512}) {
    if (name == simd_path_name(path)) return path;
  }
  throw invalid_argument_error("unknown SIMD path '" + name +
                               "' (valid: scalar, sse2, avx2, avx512)");
}

bool path_supported(const cpu_features& features, simd_path path) {
  switch (path) {
    case simd_path::scalar:
      return true;
    case simd_path::sse2:
      return features.sse2;
    case simd_path::avx2:
      return features.avx2;
    case simd_path::avx512:
      return features.avx512f && features.avx512bw;
  }
  return false;
}

bool path_compiled(simd_path path) {
  // The per-path kernel table getters return nullptr exactly when the
  // build could not compile their ISA (no -mavx2 support, non-x86 target).
  // The rng and decoder table sets are gated by the same preprocessor
  // conditions, so the rng set -- visible from util -- answers for both.
  return detail::rng_kernel_table_for(path) != nullptr;
}

std::vector<simd_path> available_paths() {
  std::vector<simd_path> out;
  const cpu_features& features = detect();
  for (const simd_path path : {simd_path::scalar, simd_path::sse2,
                               simd_path::avx2, simd_path::avx512}) {
    if (path_compiled(path) && path_supported(features, path)) {
      out.push_back(path);
    }
  }
  return out;
}

namespace {

void require_available(simd_path path, const char* origin) {
  if (!path_compiled(path)) {
    throw invalid_argument_error(std::string(origin) + ": SIMD path '" +
                                 simd_path_name(path) +
                                 "' is not compiled into this binary");
  }
  if (!path_supported(detect(), path)) {
    throw invalid_argument_error(std::string(origin) + ": SIMD path '" +
                                 simd_path_name(path) +
                                 "' is not supported by this CPU (features: " +
                                 to_string(detect()) + ")");
  }
}

simd_path resolve_default_path() {
  if (const std::optional<simd_path> forced = env_simd_path()) return *forced;
#if defined(NWDEC_DEPRECATED_SIMD_DEFAULT)
  // The old NWDEC_SIMD=ON build compiled the kernels as explicit AVX2; the
  // shim keeps that binary preferring avx2 but degrades gracefully where
  // the hard-coded build would have crashed.
  if (path_compiled(simd_path::avx2) &&
      path_supported(detect(), simd_path::avx2)) {
    return simd_path::avx2;
  }
#endif
  const std::vector<simd_path> paths = available_paths();
  return paths.empty() ? simd_path::scalar : paths.back();
}

// -1 = unresolved; otherwise the pinned simd_path value. A failed env
// resolution leaves it unresolved so the clear error repeats per call
// instead of poisoning the process with a half-initialized choice.
std::atomic<int>& active_slot() {
  static std::atomic<int> slot{-1};
  return slot;
}

}  // namespace

std::optional<simd_path> env_simd_path() {
  const char* raw = std::getenv("NWDEC_SIMD_PATH");
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  simd_path path;
  try {
    path = parse_simd_path(raw);
  } catch (const invalid_argument_error& error) {
    throw invalid_argument_error(std::string("NWDEC_SIMD_PATH: ") +
                                 error.what());
  }
  require_available(path, "NWDEC_SIMD_PATH");
  return path;
}

simd_path active_path() {
  const int current = active_slot().load(std::memory_order_acquire);
  if (current >= 0) return static_cast<simd_path>(current);
  // Benign race: concurrent first calls resolve to the same value (the
  // resolution is a pure function of environment + build + CPU).
  const simd_path resolved = resolve_default_path();
  active_slot().store(static_cast<int>(resolved), std::memory_order_release);
  return resolved;
}

void force_path(simd_path path) {
  require_available(path, "force_path");
  active_slot().store(static_cast<int>(path), std::memory_order_release);
}

}  // namespace nwdec::cpu
