// util::metrics: the process-wide observability registry -- named counters,
// gauges, and fixed-bucket histograms with a lock-free hot path.
//
// Registration (registry::counter / gauge / histogram) takes a mutex once
// and returns a stable reference; instrumented code holds that reference
// and every subsequent update is a handful of relaxed atomic operations --
// the same disarmed-cost discipline as util/failpoint, cheap enough to
// leave compiled into release builds permanently. Updates never touch any
// result payload: telemetry is strictly out-of-band, so the daemon's
// determinism contract (a payload is a pure function of (config, request))
// is unaffected by instrumentation.
//
// A metric is identified by (name, labels) where `labels` is a pre-rendered
// Prometheus label body like `path="avx2"` (empty for unlabeled metrics).
// Registering the same identity twice returns the same object; registering
// it as a different kind throws.
//
// snapshot() is safe to call while writers are updating: it reads every
// cell with relaxed loads, so each sampled value is some value the metric
// actually held (counters are monotone; a snapshot taken mid-traffic lands
// between the before and after totals). Samples are sorted by (name,
// labels), so two snapshots of identical state render byte-identically --
// the `metrics` protocol verb and the Prometheus exposition depend on this
// stable order.
//
// Rendering:
//   * write_json  -- the `metrics` verb's snapshot document (sorted keys,
//                    exact shortest-double numbers);
//   * to_prometheus -- the text exposition format (`# TYPE` per family,
//                    cumulative `_bucket{le=...}` / `_sum` / `_count`
//                    rows per histogram) served on --metrics-port.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"

namespace nwdec::metrics {

/// Monotone event counter. inc() is one relaxed fetch_add.
class counter {
 public:
  void inc(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written-value gauge (queue depth, rates). set()/add() are single
/// relaxed atomic operations (add is a CAS loop on the double payload).
class gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    double seen = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(seen, seen + delta,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// finite buckets (ascending); one implicit +Inf bucket catches the rest.
/// observe() is a short linear scan plus three relaxed atomic updates --
/// suitable for per-request/per-run latencies, not per-trial inner loops.
class histogram {
 public:
  explicit histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (finite buckets then +Inf), relaxed reads.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< size()+1 cells
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// The default latency bucket edges (seconds): 1 ms to 60 s, roughly
/// geometric -- wide enough for queue waits and whole-sweep walls alike.
const std::vector<double>& latency_buckets_seconds();

/// One sampled counter or gauge.
struct metric_sample {
  std::string name;
  std::string labels;  ///< pre-rendered label body ('' = unlabeled)
  double value = 0.0;
};

/// One sampled histogram (counts are per-bucket, not cumulative; the
/// Prometheus renderer accumulates).
struct histogram_sample {
  std::string name;
  std::string labels;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (+Inf last)
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// A point-in-time view of every registered metric, sorted by (name,
/// labels) within each kind.
struct metrics_snapshot {
  std::vector<metric_sample> counters;
  std::vector<metric_sample> gauges;
  std::vector<histogram_sample> histograms;
};

/// Estimated quantile (q in [0, 1]) from a histogram sample by linear
/// interpolation inside the covering bucket; 0 when the histogram is
/// empty. The +Inf bucket clamps to the last finite edge.
double histogram_quantile(const histogram_sample& sample, double q);

class registry {
 public:
  registry();

  /// Registers (or finds) a metric. The returned reference is stable for
  /// the registry's lifetime; re-registering the same (name, labels) as a
  /// different kind throws invalid_argument_error. Histogram bounds are
  /// fixed by the first registration.
  counter& get_counter(const std::string& name,
                       const std::string& labels = "");
  gauge& get_gauge(const std::string& name, const std::string& labels = "");
  histogram& get_histogram(const std::string& name,
                           const std::string& labels = "",
                           const std::vector<double>& bounds =
                               latency_buckets_seconds());

  /// Consistent-enough snapshot (see the header comment), sorted.
  metrics_snapshot snapshot() const;

  /// Seconds since this registry was constructed (the process-uptime
  /// anchor for the global registry).
  double uptime_seconds() const;

  /// Zeroes every registered value (registrations stay). Tests only.
  void reset();

  /// The process-wide registry every instrumented subsystem writes to.
  static registry& global();

 private:
  enum class kind { counter, gauge, histogram };
  struct entry {
    kind type;
    std::unique_ptr<counter> as_counter;
    std::unique_ptr<gauge> as_gauge;
    std::unique_ptr<histogram> as_histogram;
  };

  mutable std::mutex mutex_;  ///< guards the map, never the hot updates
  std::map<std::pair<std::string, std::string>, entry> entries_;
  std::chrono::steady_clock::time_point created_;
};

/// Renders a snapshot as a JSON object with byte-stable key order:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {"buckets":
/// {...,"+Inf": n}, "count": n, "sum": x}}}. Labeled metrics key as
/// `name{labels}`.
void write_json(json_writer& json, const metrics_snapshot& snapshot);

/// The Prometheus text exposition (version 0.0.4) of a snapshot: one
/// `# TYPE` line per metric family, cumulative bucket rows per histogram.
std::string to_prometheus(const metrics_snapshot& snapshot);

}  // namespace nwdec::metrics
