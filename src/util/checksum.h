// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) -- the integrity
// check on every write-ahead-log record (service/durable_store.h). The
// choice is deliberate boring: the zlib/PNG CRC, table-driven, one byte at
// a time; torn or bit-flipped records are detection targets, not
// adversaries, and the recovery path verifies a handful of records per
// startup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace nwdec {

/// CRC-32 of `size` bytes at `data`, continuing from `seed` (pass a
/// previous call's return value to checksum a buffer in pieces; the
/// pre/post inversion is handled internally, so 0 starts a fresh sum).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

inline std::uint32_t crc32(std::string_view text, std::uint32_t seed = 0) {
  return crc32(text.data(), text.size(), seed);
}

}  // namespace nwdec
