#include "util/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>

#include "util/error.h"

namespace nwdec::metrics {

namespace {

// Shortest double text that parses back to the same bits -- the same
// printing discipline as util/json, so snapshot renderings are
// byte-stable.
std::string format_double(double value) {
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc()) return "0";
  return std::string(buffer, end);
}

}  // namespace

histogram::histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  NWDEC_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bucket bounds must be ascending");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t b = 0; b <= bounds_.size(); ++b) buckets_[b].store(0);
}

void histogram::observe(double value) {
  std::size_t bucket = bounds_.size();  // +Inf unless a finite edge covers it
  for (std::size_t b = 0; b < bounds_.size(); ++b) {
    if (value <= bounds_[b]) {
      bucket = b;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double seen = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(seen, seen + value,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t b = 0; b <= bounds_.size(); ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return counts;
}

void histogram::reset() {
  for (std::size_t b = 0; b <= bounds_.size(); ++b) buckets_[b].store(0);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& latency_buckets_seconds() {
  static const std::vector<double> buckets = {
      0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
      0.25,  0.5,    1.0,   2.5,  5.0,   10.0, 60.0};
  return buckets;
}

double histogram_quantile(const histogram_sample& sample, double q) {
  if (sample.count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(sample.count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < sample.buckets.size(); ++b) {
    const std::uint64_t in_bucket = sample.buckets[b];
    if (static_cast<double>(cumulative + in_bucket) < rank) {
      cumulative += in_bucket;
      continue;
    }
    // The +Inf bucket has no finite upper edge: clamp to the last edge.
    if (b >= sample.bounds.size()) {
      return sample.bounds.empty() ? 0.0 : sample.bounds.back();
    }
    const double lower = b == 0 ? 0.0 : sample.bounds[b - 1];
    const double upper = sample.bounds[b];
    if (in_bucket == 0) return upper;
    const double within =
        (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * std::min(1.0, std::max(0.0, within));
  }
  return sample.bounds.empty() ? 0.0 : sample.bounds.back();
}

registry::registry() : created_(std::chrono::steady_clock::now()) {}

counter& registry::get_counter(const std::string& name,
                               const std::string& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  entry& slot = entries_[{name, labels}];
  if (slot.as_counter == nullptr) {
    NWDEC_EXPECTS(slot.as_gauge == nullptr && slot.as_histogram == nullptr,
                  "metric '" + name + "' is already registered as a "
                  "different kind");
    slot.type = kind::counter;
    slot.as_counter = std::make_unique<counter>();
  }
  return *slot.as_counter;
}

gauge& registry::get_gauge(const std::string& name,
                           const std::string& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  entry& slot = entries_[{name, labels}];
  if (slot.as_gauge == nullptr) {
    NWDEC_EXPECTS(slot.as_counter == nullptr && slot.as_histogram == nullptr,
                  "metric '" + name + "' is already registered as a "
                  "different kind");
    slot.type = kind::gauge;
    slot.as_gauge = std::make_unique<gauge>();
  }
  return *slot.as_gauge;
}

histogram& registry::get_histogram(const std::string& name,
                                   const std::string& labels,
                                   const std::vector<double>& bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  entry& slot = entries_[{name, labels}];
  if (slot.as_histogram == nullptr) {
    NWDEC_EXPECTS(slot.as_counter == nullptr && slot.as_gauge == nullptr,
                  "metric '" + name + "' is already registered as a "
                  "different kind");
    slot.type = kind::histogram;
    slot.as_histogram = std::make_unique<histogram>(bounds);
  }
  return *slot.as_histogram;
}

metrics_snapshot registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  metrics_snapshot out;
  // entries_ is a std::map keyed by (name, labels): iteration is already
  // the sorted order the stable renderings require.
  for (const auto& [key, slot] : entries_) {
    switch (slot.type) {
      case kind::counter:
        out.counters.push_back(
            {key.first, key.second,
             static_cast<double>(slot.as_counter->value())});
        break;
      case kind::gauge:
        out.gauges.push_back({key.first, key.second, slot.as_gauge->value()});
        break;
      case kind::histogram: {
        histogram_sample sample;
        sample.name = key.first;
        sample.labels = key.second;
        sample.bounds = slot.as_histogram->bounds();
        sample.buckets = slot.as_histogram->bucket_counts();
        sample.count = slot.as_histogram->count();
        sample.sum = slot.as_histogram->sum();
        out.histograms.push_back(std::move(sample));
        break;
      }
    }
  }
  return out;
}

double registry::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       created_)
      .count();
}

void registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, slot] : entries_) {
    switch (slot.type) {
      case kind::counter: slot.as_counter->reset(); break;
      case kind::gauge: slot.as_gauge->reset(); break;
      case kind::histogram: slot.as_histogram->reset(); break;
    }
  }
}

registry& registry::global() {
  static registry instance;
  return instance;
}

namespace {

std::string sample_key(const std::string& name, const std::string& labels) {
  return labels.empty() ? name : name + "{" + labels + "}";
}

void write_sample_group(json_writer& json, const char* group,
                        const std::vector<metric_sample>& samples) {
  json.key(group).begin_object();
  for (const metric_sample& sample : samples) {
    json.field(sample_key(sample.name, sample.labels), sample.value);
  }
  json.end_object();
}

}  // namespace

void write_json(json_writer& json, const metrics_snapshot& snapshot) {
  json.begin_object();
  write_sample_group(json, "counters", snapshot.counters);
  write_sample_group(json, "gauges", snapshot.gauges);
  json.key("histograms").begin_object();
  for (const histogram_sample& sample : snapshot.histograms) {
    json.key(sample_key(sample.name, sample.labels)).begin_object();
    json.key("buckets").begin_object();
    for (std::size_t b = 0; b < sample.buckets.size(); ++b) {
      const std::string edge = b < sample.bounds.size()
                                   ? format_double(sample.bounds[b])
                                   : std::string("+Inf");
      json.field(edge, sample.buckets[b]);
    }
    json.end_object()
        .field("count", sample.count)
        .field("sum", sample.sum)
        .end_object();
  }
  json.end_object().end_object();
}

std::string to_prometheus(const metrics_snapshot& snapshot) {
  std::ostringstream out;
  const auto type_line = [&out](const std::string& name, const char* type,
                                std::string& last_family) {
    if (name == last_family) return;  // one TYPE line per family
    out << "# TYPE " << name << " " << type << "\n";
    last_family = name;
  };
  std::string last_family;
  for (const metric_sample& sample : snapshot.counters) {
    type_line(sample.name, "counter", last_family);
    out << sample_key(sample.name, sample.labels) << " "
        << format_double(sample.value) << "\n";
  }
  last_family.clear();
  for (const metric_sample& sample : snapshot.gauges) {
    type_line(sample.name, "gauge", last_family);
    out << sample_key(sample.name, sample.labels) << " "
        << format_double(sample.value) << "\n";
  }
  last_family.clear();
  for (const histogram_sample& sample : snapshot.histograms) {
    type_line(sample.name, "histogram", last_family);
    const std::string extra =
        sample.labels.empty() ? std::string() : sample.labels + ",";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < sample.buckets.size(); ++b) {
      cumulative += sample.buckets[b];
      const std::string edge = b < sample.bounds.size()
                                   ? format_double(sample.bounds[b])
                                   : std::string("+Inf");
      out << sample.name << "_bucket{" << extra << "le=\"" << edge << "\"} "
          << cumulative << "\n";
    }
    out << sample_key(sample.name + "_sum", sample.labels) << " "
        << format_double(sample.sum) << "\n"
        << sample_key(sample.name + "_count", sample.labels) << " "
        << sample.count << "\n";
  }
  return out.str();
}

}  // namespace nwdec::metrics
