#include "util/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

namespace nwdec::net {

bool send_all(int fd, const void* data, std::size_t size) {
  const char* bytes = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_all(int fd, const std::string& data) {
  return send_all(fd, data.data(), data.size());
}

int connect_tcp(const std::string& host, std::uint16_t port,
                int connect_timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    errno = EINVAL;
    return -1;
  }
  if (connect_timeout_ms <= 0) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                  sizeof(address)) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      return -1;
    }
    return fd;
  }
  // Bounded connect: go non-blocking, start the handshake, poll for
  // writability, then read SO_ERROR for the real outcome.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int started = ::connect(
      fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address));
  if (started != 0 && errno != EINPROGRESS) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  if (started != 0) {
    pollfd waiting{fd, POLLOUT, 0};
    const int ready = ::poll(&waiting, 1, connect_timeout_ms);
    if (ready <= 0) {
      ::close(fd);
      errno = ready == 0 ? ETIMEDOUT : errno;
      return -1;
    }
    int error = 0;
    socklen_t length = sizeof(error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &length) != 0 ||
        error != 0) {
      ::close(fd);
      errno = error != 0 ? error : errno;
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return fd;
}

long read_some(int fd, void* buffer, std::size_t size, int timeout_ms) {
  const auto start = std::chrono::steady_clock::now();
  int remaining = timeout_ms;
  for (;;) {
    if (timeout_ms >= 0) {
      pollfd waiting{fd, POLLIN, 0};
      const int ready = ::poll(&waiting, 1, remaining);
      if (ready == 0) return -2;
      if (ready < 0) {
        if (errno != EINTR) return -1;
        // Retry with whatever budget the interrupted poll left.
        const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
        remaining = timeout_ms - static_cast<int>(waited.count());
        if (remaining <= 0) return -2;
        continue;
      }
    }
    const ssize_t n = ::read(fd, buffer, size);
    if (n < 0 && errno == EINTR) continue;
    return static_cast<long>(n);
  }
}

}  // namespace nwdec::net
