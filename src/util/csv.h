// Minimal CSV emitter; the bench binaries can dump every figure's series to
// a file for external plotting (`--csv <path>`).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace nwdec {

/// Writes rows of cells as RFC-4180-ish CSV (quotes cells containing commas,
/// quotes or newlines; doubles embedded quotes).
class csv_writer {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// nwdec::error when the file cannot be opened.
  csv_writer(const std::string& path, const std::vector<std::string>& header);

  /// Emits one data row; width does not have to match the header (ragged
  /// series are allowed for surface data).
  void add_row(const std::vector<std::string>& cells);

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
};

/// Escapes a single CSV cell (exposed for tests).
std::string csv_escape(const std::string& cell);

/// Renders one row (escaped cells joined by commas, trailing newline) --
/// the string-building primitive under csv_writer, shared by serializers
/// that build documents in memory (core::to_csv).
std::string csv_row(const std::vector<std::string>& cells);

}  // namespace nwdec
