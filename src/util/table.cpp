#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace nwdec {

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  NWDEC_EXPECTS(!headers_.empty(), "a table needs at least one column");
}

void text_table::add_row(std::vector<std::string> cells) {
  NWDEC_EXPECTS(cells.size() == headers_.size(),
                "row width must match the number of headers");
  rows_.push_back(std::move(cells));
}

void text_table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto rule = [&os, &widths] {
    os << '+';
    for (const std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  const auto line = [&os, &widths](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left
         << cells[c] << " |";
    }
    os << '\n';
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void text_table::print(std::ostream& os, const std::string& title) const {
  os << title << '\n';
  print(os);
}

std::string format_fixed(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

std::string format_percent(double fraction, int decimals) {
  return format_fixed(100.0 * fraction, decimals) + "%";
}

std::string format_count(std::size_t value) { return std::to_string(value); }

}  // namespace nwdec
