// ASCII table rendering for the benchmark harnesses and examples.
//
// Every figure/table reproduction prints its series through this class so
// the output is uniform: a header row, aligned columns, and an optional
// title. Cells are strings; format_* helpers convert numbers consistently.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace nwdec {

/// Column-aligned ASCII table builder.
class text_table {
 public:
  /// Creates a table with the given column headers.
  explicit text_table(std::vector<std::string> headers);

  /// Appends one row; it must have exactly as many cells as there are
  /// headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table with +---+ rules and | separators.
  void print(std::ostream& os) const;

  /// Renders with a title line above the table.
  void print(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with a fixed number of decimals.
std::string format_fixed(double value, int decimals);

/// Formats a value as a percentage with the given decimals, e.g. "42.0%".
std::string format_percent(double fraction, int decimals = 1);

/// Formats an integer count.
std::string format_count(std::size_t value);

}  // namespace nwdec
