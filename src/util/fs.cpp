#include "util/fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/error.h"
#include "util/failpoint.h"

namespace nwdec {

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw io_error(what + " '" + path + "' (" + std::strerror(errno) + ")");
}

// Full-buffer write(2) loop; returns false (with errno set) on failure.
bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::string parent_of(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  return parent.empty() ? std::string(".") : parent.string();
}

}  // namespace

std::optional<std::string> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    throw_errno("cannot open", path);
  }
  std::string contents;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("cannot read", path);
    }
    if (n == 0) break;
    contents.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return contents;
}

void write_file_atomic(const std::string& path, std::string_view contents,
                       bool sync) {
  const std::string tmp = path + ".tmp";
  NWDEC_FAILPOINT("atomic_write.before_tmp");

  // Scope guard: any exit before the rename commits -- an I/O error or a
  // throwing failpoint -- closes the fd and removes the tmp file, so a
  // *failed* replacement leaves no droppings. (A killed process still
  // leaves the tmp; open() discards stale tmps for that case.)
  struct pending_tmp {
    const std::string& name;
    int fd = -1;
    bool committed = false;
    ~pending_tmp() {
      if (committed) return;
      if (fd >= 0) ::close(fd);
      ::unlink(name.c_str());
    }
  } pending{tmp};

  pending.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (pending.fd < 0) throw_errno("cannot create", tmp);

  // Two half-writes around a failpoint so the crash suite can leave a
  // genuinely torn tmp file behind -- the recovery contract is that a torn
  // *tmp* is garbage to discard, never the live file.
  const std::size_t half = contents.size() / 2;
  bool ok = write_all(pending.fd, contents.data(), half);
  if (ok) NWDEC_FAILPOINT("atomic_write.partial");
  ok = ok &&
       write_all(pending.fd, contents.data() + half, contents.size() - half);
  if (!ok) throw_errno("cannot write", tmp);
  NWDEC_FAILPOINT("atomic_write.before_fsync");
  if (sync && ::fsync(pending.fd) != 0) throw_errno("cannot fsync", tmp);
  const int fd = pending.fd;
  pending.fd = -1;  // close exactly once, below
  if (::close(fd) != 0) throw_errno("cannot close", tmp);
  NWDEC_FAILPOINT("atomic_write.before_rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_errno("cannot rename into place", path);
  }
  pending.committed = true;
  NWDEC_FAILPOINT("atomic_write.after_rename");
  if (sync) fsync_parent_dir(path);
}

std::string quarantine_file(const std::string& path) {
  for (std::size_t n = 1;; ++n) {
    const std::string candidate = path + ".corrupt-" + std::to_string(n);
    if (std::filesystem::exists(candidate)) continue;
    if (::rename(path.c_str(), candidate.c_str()) != 0) {
      throw_errno("cannot quarantine", path);
    }
    fsync_parent_dir(path);
    return candidate;
  }
}

void fsync_parent_dir(const std::string& path) {
  const int fd = ::open(parent_of(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);  // best effort by contract
  ::close(fd);
}

}  // namespace nwdec
