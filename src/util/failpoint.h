// util::failpoints: a fault-injection harness for crash-safety testing.
//
// A failpoint is a named marker in production code -- NWDEC_FAILPOINT("x")
// -- that does nothing until a test (or the NWDEC_FAILPOINT environment
// variable) arms it with an action:
//
//   * action::error -- throw nwdec::error from the marker, exercising the
//     error-handling path of the surrounding code;
//   * action::kill  -- _exit(kill_exit_code) immediately, simulating a
//     kill -9 / power loss at exactly that instruction (no destructors, no
//     atexit, no flush: whatever reached the kernel is what a restart sees).
//
// The disarmed fast path is one relaxed atomic load and a branch -- cheap
// enough to leave the markers in release builds permanently, which is the
// point: the crash-injection suite sweeps the *shipping* persistence code,
// not a test double.
//
// Arming from the environment (picked up by tools calling arm_from_env):
//
//   NWDEC_FAILPOINT="durable.snapshot.before_rename=kill" nwdec_service ...
//   NWDEC_FAILPOINT="durable.append.partial=error@2;other=kill"
//
// `@n` skips the first n hits before firing (fire on hit n+1); `;` (or ',')
// separates multiple failpoints.
//
// Trace mode records the name of every marker crossed while enabled --
// the crash sweep uses it to *discover* the set of failpoints a persistence
// cycle passes through instead of hard-coding the list.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

namespace nwdec::failpoints {

enum class action {
  error,  ///< throw nwdec::error from the marker
  kill,   ///< _exit(kill_exit_code): simulated kill -9 at the marker
};

/// Exit status of a kill-action failpoint -- distinguishable from every
/// normal exit and from signal deaths in the test driver's waitpid.
inline constexpr int kill_exit_code = 86;

namespace detail {

/// True when any failpoint is armed or trace mode is on; the macro's only
/// cost when everything is disarmed.
extern std::atomic<bool> g_active;

/// Slow path behind the macro: records the hit (trace mode) and fires the
/// armed action, if any.
void hit(const char* name);

}  // namespace detail

/// Arms `name`: the marker fires `act` on its (skip+1)-th hit and every hit
/// after. Re-arming replaces the previous setting and resets the skip.
void arm(const std::string& name, action act, std::size_t skip = 0);

/// Disarms one failpoint / every failpoint (hit counters reset too).
void disarm(const std::string& name);
void disarm_all();

/// Times an *armed* failpoint was crossed (including skipped hits);
/// 0 for disarmed names.
std::size_t hit_count(const std::string& name);

/// Parses the NWDEC_FAILPOINT-style arming list from the environment
/// variable (see the header comment for the grammar) and arms every entry;
/// returns how many were armed (0 when the variable is unset or empty).
/// Throws invalid_argument_error on a malformed list.
std::size_t arm_from_env(const char* variable = "NWDEC_FAILPOINT");

/// Trace mode: while enabled, the name of every marker crossed is recorded
/// once, in first-hit order. Enabling clears the previous trace.
void set_trace(bool enabled);
std::vector<std::string> trace();

}  // namespace nwdec::failpoints

/// Marks one failpoint. Disarmed cost: one relaxed atomic load.
#define NWDEC_FAILPOINT(name)                       \
  do {                                              \
    if (::nwdec::failpoints::detail::g_active.load( \
            std::memory_order_relaxed)) {           \
      ::nwdec::failpoints::detail::hit(name);       \
    }                                               \
  } while (false)
