#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "util/error.h"

namespace nwdec {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ------------------------------------------------------------- json_value

bool json_value::as_bool() const {
  NWDEC_EXPECTS(kind_ == kind::boolean, "json_value is not a boolean");
  return bool_;
}

double json_value::as_number() const {
  NWDEC_EXPECTS(kind_ == kind::number, "json_value is not a number");
  return number_;
}

const std::string& json_value::as_string() const {
  NWDEC_EXPECTS(kind_ == kind::string, "json_value is not a string");
  return string_;
}

const std::vector<json_value>& json_value::items() const {
  NWDEC_EXPECTS(kind_ == kind::array, "json_value is not an array");
  return items_;
}

const std::vector<json_value::member>& json_value::members() const {
  NWDEC_EXPECTS(kind_ == kind::object, "json_value is not an object");
  return members_;
}

void json_value::push_back(json_value element) {
  NWDEC_EXPECTS(kind_ == kind::array, "push_back on a non-array json_value");
  items_.push_back(std::move(element));
}

void json_value::set(const std::string& name, json_value value) {
  NWDEC_EXPECTS(kind_ == kind::object, "set on a non-object json_value");
  for (member& entry : members_) {
    if (entry.first == name) {
      entry.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(name, std::move(value));
}

const json_value* json_value::find(const std::string& name) const {
  if (kind_ != kind::object) return nullptr;
  for (const member& entry : members_) {
    if (entry.first == name) return &entry.second;
  }
  return nullptr;
}

json_value json_value::object(std::vector<member> members) {
  json_value out(kind::object);
  out.members_ = std::move(members);
  return out;
}

const json_value& json_value::at(const std::string& name) const {
  NWDEC_EXPECTS(kind_ == kind::object, "at() on a non-object json_value");
  const json_value* found = find(name);
  if (found == nullptr) {
    throw not_found_error("json object has no member '" + name + "'");
  }
  return *found;
}

bool operator==(const json_value& a, const json_value& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case json_value::kind::null: return true;
    case json_value::kind::boolean: return a.bool_ == b.bool_;
    case json_value::kind::number: return a.number_ == b.number_;
    case json_value::kind::string: return a.string_ == b.string_;
    case json_value::kind::array: return a.items_ == b.items_;
    case json_value::kind::object: return a.members_ == b.members_;
  }
  return false;
}

// ------------------------------------------------------------ json_parse

namespace {

class json_parser {
 public:
  explicit json_parser(const std::string& text) : text_(text) {}

  json_value parse_document() {
    skip_whitespace();
    json_value value = parse_value(0);
    skip_whitespace();
    if (at_ != text_.size()) fail("trailing content after the JSON document");
    return value;
  }

 private:
  // Deep enough for any nwdec document; bounds the recursion so a hostile
  // daemon request cannot overflow the stack.
  static constexpr std::size_t max_depth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    throw json_parse_error("JSON parse error at offset " +
                           std::to_string(at_) + ": " + what);
  }

  bool done() const { return at_ >= text_.size(); }
  char peek() const { return text_[at_]; }

  char next() {
    if (done()) fail("unexpected end of input");
    return text_[at_++];
  }

  void expect(char c) {
    if (done() || text_[at_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++at_;
  }

  void skip_whitespace() {
    while (!done()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++at_;
    }
  }

  json_value parse_value(std::size_t depth) {
    if (depth > max_depth) fail("document nests deeper than 128 levels");
    if (done()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return json_value(parse_string());
      case 't': expect_literal("true"); return json_value(true);
      case 'f': expect_literal("false"); return json_value(false);
      case 'n': expect_literal("null"); return json_value();
      default:
        if (peek() == '-' || (peek() >= '0' && peek() <= '9')) {
          return json_value(parse_number());
        }
        fail(std::string("unexpected character '") + peek() + "'");
    }
  }

  void expect_literal(const char* literal) {
    for (const char* c = literal; *c != '\0'; ++c) {
      if (done() || text_[at_] != *c) {
        fail(std::string("expected '") + literal + "'");
      }
      ++at_;
    }
  }

  json_value parse_object(std::size_t depth) {
    expect('{');
    skip_whitespace();
    if (!done() && peek() == '}') {
      ++at_;
      return json_value::object();
    }
    // Members accumulate in a flat vector with a key index on the side, so
    // a large (possibly hostile) object parses in O(n) instead of the
    // O(n^2) repeated set() would cost; duplicate keys keep last-wins
    // semantics.
    std::vector<json_value::member> members;
    std::unordered_map<std::string, std::size_t> index;
    while (true) {
      skip_whitespace();
      if (done() || peek() != '"') fail("expected an object key string");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      skip_whitespace();
      json_value value = parse_value(depth + 1);
      const auto [it, inserted] = index.emplace(key, members.size());
      if (inserted) {
        members.emplace_back(std::move(key), std::move(value));
      } else {
        members[it->second].second = std::move(value);
      }
      skip_whitespace();
      const char c = next();
      if (c == '}') return json_value::object(std::move(members));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  json_value parse_array(std::size_t depth) {
    expect('[');
    json_value array = json_value::array();
    skip_whitespace();
    if (!done() && peek() == ']') {
      ++at_;
      return array;
    }
    while (true) {
      skip_whitespace();
      array.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = next();
      if (c == ']') return array;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (done()) fail("unterminated string");
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string (use \\u escapes)");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char escape = next();
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default: fail("unknown escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = next();
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("expected four hex digits after \\u");
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xd800 && code <= 0xdbff) {
      // High surrogate: a low surrogate escape must follow.
      if (done() || next() != '\\' || done() || next() != 'u') {
        fail("high surrogate without a following \\u low surrogate");
      }
      const unsigned low = parse_hex4();
      if (low < 0xdc00 || low > 0xdfff) {
        fail("invalid low surrogate in \\u pair");
      }
      code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
    } else if (code >= 0xdc00 && code <= 0xdfff) {
      fail("unpaired low surrogate");
    }
    // Encode the code point as UTF-8.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  double parse_number() {
    // Validate the strict JSON grammar first (from_chars is laxer: it
    // accepts inf/nan and bare leading dots).
    const std::size_t start = at_;
    if (!done() && peek() == '-') ++at_;
    if (done() || peek() < '0' || peek() > '9') fail("malformed number");
    if (peek() == '0') {
      ++at_;
    } else {
      while (!done() && peek() >= '0' && peek() <= '9') ++at_;
    }
    if (!done() && peek() == '.') {
      ++at_;
      if (done() || peek() < '0' || peek() > '9') {
        fail("expected digits after the decimal point");
      }
      while (!done() && peek() >= '0' && peek() <= '9') ++at_;
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++at_;
      if (!done() && (peek() == '+' || peek() == '-')) ++at_;
      if (done() || peek() < '0' || peek() > '9') {
        fail("expected digits in the exponent");
      }
      while (!done() && peek() >= '0' && peek() <= '9') ++at_;
    }
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + at_;
    const std::from_chars_result result = std::from_chars(first, last, value);
    if (result.ec != std::errc{} || result.ptr != last) {
      fail("malformed number");
    }
    return value;
  }

  const std::string& text_;
  std::size_t at_ = 0;
};

}  // namespace

json_value json_parse(const std::string& text) {
  return json_parser(text).parse_document();
}

// ------------------------------------------------------------ json_writer

void json_writer::indent() {
  for (std::size_t k = 0; k < stack_.size(); ++k) out_ << "  ";
}

void json_writer::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  NWDEC_EXPECTS(stack_.empty() || stack_.back().inside == scope::array,
                "a value inside an object needs a key() first");
  if (!stack_.empty()) {
    if (!stack_.back().first) out_ << ",";
    stack_.back().first = false;
    if (style_ == style::pretty) {
      out_ << "\n";
      indent();
    }
  }
}

json_writer& json_writer::begin_object() {
  before_value();
  out_ << "{";
  stack_.push_back({scope::object, true});
  return *this;
}

json_writer& json_writer::end_object() {
  NWDEC_EXPECTS(!stack_.empty() && stack_.back().inside == scope::object &&
                    !pending_key_,
                "end_object() outside an object");
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty && style_ == style::pretty) {
    out_ << "\n";
    indent();
  }
  out_ << "}";
  return *this;
}

json_writer& json_writer::begin_array() {
  before_value();
  out_ << "[";
  stack_.push_back({scope::array, true});
  return *this;
}

json_writer& json_writer::end_array() {
  NWDEC_EXPECTS(!stack_.empty() && stack_.back().inside == scope::array,
                "end_array() outside an array");
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty && style_ == style::pretty) {
    out_ << "\n";
    indent();
  }
  out_ << "]";
  return *this;
}

json_writer& json_writer::key(const std::string& name) {
  NWDEC_EXPECTS(!stack_.empty() && stack_.back().inside == scope::object &&
                    !pending_key_,
                "key() is only valid directly inside an object");
  if (!stack_.back().first) out_ << ",";
  stack_.back().first = false;
  if (style_ == style::pretty) {
    out_ << "\n";
    indent();
  }
  out_ << "\"" << json_escape(name) << "\":";
  if (style_ == style::pretty) out_ << " ";
  pending_key_ = true;
  return *this;
}

json_writer& json_writer::raw(const std::string& text) {
  before_value();
  out_ << text;
  return *this;
}

json_writer& json_writer::value(const std::string& text) {
  return raw("\"" + json_escape(text) + "\"");
}

json_writer& json_writer::value(const char* text) {
  return value(std::string(text));
}

json_writer& json_writer::value(double number) {
  // JSON has no inf/nan; map them to null rather than emit garbage.
  if (!std::isfinite(number)) return raw("null");
  // Shortest representation that parses back to the same double, so the
  // reports round-trip exactly through strtod.
  char buffer[32];
  const std::to_chars_result result =
      std::to_chars(buffer, buffer + sizeof(buffer), number);
  return raw(std::string(buffer, result.ptr));
}

json_writer& json_writer::value(bool flag) {
  return raw(flag ? "true" : "false");
}

json_writer& json_writer::value(const json_value& node) {
  switch (node.type()) {
    case json_value::kind::null: return raw("null");
    case json_value::kind::boolean: return value(node.as_bool());
    case json_value::kind::number: return value(node.as_number());
    case json_value::kind::string: return value(node.as_string());
    case json_value::kind::array: {
      begin_array();
      for (const json_value& element : node.items()) value(element);
      return end_array();
    }
    case json_value::kind::object: {
      begin_object();
      for (const json_value::member& entry : node.members()) {
        key(entry.first);
        value(entry.second);
      }
      return end_object();
    }
  }
  return *this;
}

std::string json_writer::str() const {
  NWDEC_EXPECTS(stack_.empty() && !pending_key_,
                "str() called with an unclosed object/array or dangling key");
  return out_.str() + "\n";
}

std::string json_render(const json_value& node,
                        json_writer::style output_style) {
  json_writer writer(output_style);
  writer.value(node);
  return writer.str();
}

}  // namespace nwdec
