#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.h"

namespace nwdec {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void json_writer::indent() {
  for (std::size_t k = 0; k < stack_.size(); ++k) out_ << "  ";
}

void json_writer::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  NWDEC_EXPECTS(stack_.empty() || stack_.back().inside == scope::array,
                "a value inside an object needs a key() first");
  if (!stack_.empty()) {
    if (!stack_.back().first) out_ << ",";
    stack_.back().first = false;
    out_ << "\n";
    indent();
  }
}

json_writer& json_writer::begin_object() {
  before_value();
  out_ << "{";
  stack_.push_back({scope::object, true});
  return *this;
}

json_writer& json_writer::end_object() {
  NWDEC_EXPECTS(!stack_.empty() && stack_.back().inside == scope::object &&
                    !pending_key_,
                "end_object() outside an object");
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) {
    out_ << "\n";
    indent();
  }
  out_ << "}";
  return *this;
}

json_writer& json_writer::begin_array() {
  before_value();
  out_ << "[";
  stack_.push_back({scope::array, true});
  return *this;
}

json_writer& json_writer::end_array() {
  NWDEC_EXPECTS(!stack_.empty() && stack_.back().inside == scope::array,
                "end_array() outside an array");
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) {
    out_ << "\n";
    indent();
  }
  out_ << "]";
  return *this;
}

json_writer& json_writer::key(const std::string& name) {
  NWDEC_EXPECTS(!stack_.empty() && stack_.back().inside == scope::object &&
                    !pending_key_,
                "key() is only valid directly inside an object");
  if (!stack_.back().first) out_ << ",";
  stack_.back().first = false;
  out_ << "\n";
  indent();
  out_ << "\"" << json_escape(name) << "\": ";
  pending_key_ = true;
  return *this;
}

json_writer& json_writer::raw(const std::string& text) {
  before_value();
  out_ << text;
  return *this;
}

json_writer& json_writer::value(const std::string& text) {
  return raw("\"" + json_escape(text) + "\"");
}

json_writer& json_writer::value(const char* text) {
  return value(std::string(text));
}

json_writer& json_writer::value(double number) {
  // JSON has no inf/nan; map them to null rather than emit garbage.
  if (!std::isfinite(number)) return raw("null");
  // Shortest representation that parses back to the same double, so the
  // reports round-trip exactly through strtod.
  char buffer[32];
  const std::to_chars_result result =
      std::to_chars(buffer, buffer + sizeof(buffer), number);
  return raw(std::string(buffer, result.ptr));
}

json_writer& json_writer::value(bool flag) {
  return raw(flag ? "true" : "false");
}

std::string json_writer::str() const {
  NWDEC_EXPECTS(stack_.empty() && !pending_key_,
                "str() called with an unclosed object/array or dangling key");
  return out_.str() + "\n";
}

}  // namespace nwdec
