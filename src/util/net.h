// util::net: the socket byte-moving primitives every networked component
// shares (api/tcp_transport, api/resilient_client, api/chaos_transport).
//
// POSIX write()/send() may transfer FEWER bytes than asked -- a full socket
// buffer, a signal, a small SO_SNDBUF -- and may fail spuriously with
// EINTR. A call site that does not loop silently truncates its payload the
// first time the kernel is busy (exactly the bug class the hostile-network
// hardening PR audited out of the transports), so every full-buffer
// transfer in the tree goes through these helpers instead of raw syscalls.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace nwdec::net {

/// Sends the whole buffer: loops on short writes and EINTR, MSG_NOSIGNAL
/// so a peer that hung up surfaces as a false return (with errno set by
/// the failing send) instead of SIGPIPE. Returns false once the peer is
/// unreachable; `data` may have been partially delivered then.
bool send_all(int fd, const void* data, std::size_t size);
bool send_all(int fd, const std::string& data);

/// Connects a blocking IPv4 TCP socket to host:port and returns the fd;
/// -1 on failure (errno set). `connect_timeout_ms` > 0 bounds the connect
/// itself (non-blocking connect + poll), so a black-holed peer cannot pin
/// the caller for the kernel's minutes-long default.
int connect_tcp(const std::string& host, std::uint16_t port,
                int connect_timeout_ms = 0);

/// Reads up to `size` bytes with a deadline: polls for readability up to
/// `timeout_ms` (< 0 = block forever), then read()s once. Returns the
/// byte count, 0 on orderly EOF, -1 on error, -2 on timeout (nothing
/// readable before the deadline). EINTR is retried with the remaining
/// time budget.
long read_some(int fd, void* buffer, std::size_t size, int timeout_ms);

}  // namespace nwdec::net
