// Error handling primitives shared by every nwdec library.
//
// The library follows a simple contract discipline:
//   * NWDEC_EXPECTS(cond, msg)  -- precondition on public API arguments;
//     violation throws nwdec::invalid_argument_error.
//   * NWDEC_ENSURES(cond, msg)  -- postcondition / internal invariant;
//     violation throws nwdec::logic_invariant_error (a bug in nwdec itself).
// Both are always on: the checks guard physical-design code where a silent
// out-of-range index produces plausible-looking but wrong statistics.
#pragma once

#include <stdexcept>
#include <string>

namespace nwdec {

/// Base class for every exception thrown by nwdec.
class error : public std::runtime_error {
 public:
  explicit error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller passed an argument that violates a documented precondition.
class invalid_argument_error : public error {
 public:
  explicit invalid_argument_error(const std::string& what) : error(what) {}
};

/// An internal invariant of the library failed; indicates a bug in nwdec.
class logic_invariant_error : public error {
 public:
  explicit logic_invariant_error(const std::string& what) : error(what) {}
};

/// A requested object (code word, design point, ...) does not exist.
class not_found_error : public error {
 public:
  explicit not_found_error(const std::string& what) : error(what) {}
};

/// A filesystem operation failed (open/write/fsync/rename); what() carries
/// the path and the errno text.
class io_error : public error {
 public:
  explicit io_error(const std::string& what) : error(what) {}
};

/// A job/evaluation was abandoned because its client cancelled it.
class cancelled_error : public error {
 public:
  explicit cancelled_error(const std::string& what) : error(what) {}
};

/// A job/evaluation was abandoned because its deadline expired.
class timeout_error : public error {
 public:
  explicit timeout_error(const std::string& what) : error(what) {}
};

/// The service shed load instead of queueing: the request was rejected
/// without side effects and may be retried later.
class overloaded_error : public error {
 public:
  explicit overloaded_error(const std::string& what) : error(what) {}
};

/// A request reused an idempotency key (request_id) with a DIFFERENT
/// payload than the submission that registered it: the retry-vs-new-work
/// question cannot be answered safely, so the request is rejected without
/// side effects. Unlike overloaded_error this is not retryable as-is --
/// the client must pick a fresh request_id (or resend the original bytes).
class conflict_error : public error {
 public:
  explicit conflict_error(const std::string& what) : error(what) {}
};

namespace detail {

[[noreturn]] void throw_expects_failure(const char* condition, const char* file,
                                        int line, const std::string& message);
[[noreturn]] void throw_ensures_failure(const char* condition, const char* file,
                                        int line, const std::string& message);

}  // namespace detail

}  // namespace nwdec

#define NWDEC_EXPECTS(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::nwdec::detail::throw_expects_failure(#cond, __FILE__, __LINE__,      \
                                             (msg));                         \
    }                                                                        \
  } while (false)

#define NWDEC_ENSURES(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::nwdec::detail::throw_ensures_failure(#cond, __FILE__, __LINE__,      \
                                             (msg));                         \
    }                                                                        \
  } while (false)
