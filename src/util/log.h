// util::logging: the leveled structured logger of the nwdec daemon.
//
// Every record is one NDJSON line -- machine-parseable, greppable, and
// safe to interleave from any thread (one mutex-guarded write per line):
//
//   {"ts":"2026-08-08T12:31:07.042Z","level":"info","component":"daemon",
//    "event":"listening","port":4750}
//
// The fixed prefix is always (ts, level, component, event) in that order;
// event-specific fields follow in the order the call site added them, so
// a given event renders its keys byte-stably (only ts varies).
//
// Usage -- a record is built fluently and emitted when the builder goes
// out of scope (or emit() is called):
//
//   logging::event(logging::level::info, "daemon", "listening")
//       .field("port", port);
//
// Levels: debug < info < warn < error < off. Records below the sink's
// minimum level cost one relaxed atomic load and build nothing.
//
// The sink is stderr by default; set_file() routes records to a log file
// (the daemon's --log-file), set_stream() to any ostream (tests capture
// into an ostringstream). Logging is strictly out-of-band: nothing here
// ever touches a protocol response, so payload determinism is unaffected
// by the level.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>

namespace nwdec::logging {

enum class level : int {
  debug = 0,
  info = 1,
  warn = 2,
  error = 3,
  off = 4,  ///< sink threshold only; records cannot be emitted at `off`
};

/// Wire spelling ("debug", "info", "warn", "error").
const char* level_name(level value);

/// Parses a --log-level spelling; throws invalid_argument_error naming the
/// valid values on anything else.
level parse_level(const std::string& name);

/// Minimum level a record must meet to be emitted. Default: info.
void set_min_level(level minimum);
level min_level();

/// True when records at `value` would be emitted -- the one-relaxed-load
/// fast path the builder checks before doing any work.
bool enabled(level value);

/// Routes records to an ostream the caller keeps alive (tests). Pass
/// nullptr to restore the default stderr sink.
void set_stream(std::ostream* sink);

/// Routes records to an append-opened file (the daemon's --log-file).
/// Throws io_error when the file cannot be opened.
void set_file(const std::string& path);

/// The current UTC timestamp in ISO-8601 with milliseconds
/// ("2026-08-08T12:31:07.042Z").
std::string timestamp_utc();

/// One structured record under construction. Move-only; emits on
/// destruction unless discarded by level or already emitted.
class record {
 public:
  record(level value, const char* component, const char* event);
  ~record();
  record(record&& other) noexcept;
  record(const record&) = delete;
  record& operator=(const record&) = delete;
  record& operator=(record&&) = delete;

  record& field(const char* name, const std::string& value);
  record& field(const char* name, const char* value);
  record& field(const char* name, double value);
  record& field(const char* name, bool value);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  record& field(const char* name, T value) {
    if (active_) append_raw(name, std::to_string(value));
    return *this;
  }

  /// Writes the record now (idempotent; the destructor is a no-op after).
  void emit();

 private:
  void append_raw(const char* name, const std::string& rendered);

  bool active_ = false;
  std::ostringstream line_;
};

/// Builds one record; the returned builder emits when it goes out of
/// scope. When `value` is below the sink threshold the builder is inert
/// (fields cost nothing).
record event(level value, const char* component, const char* event);

}  // namespace nwdec::logging
