// Internal per-path tables for the bulk deviate conversions behind
// block_rng (util/rng.h): tempering a run of raw mt19937_64 state words and
// converting them to canonical doubles (and polar-pair candidates) in bulk.
//
// Each table is produced by one translation unit compiled for one target
// ISA -- rng_kernels_{scalar,sse2,avx2,avx512}.cpp all include
// rng_kernels_body.inc with different compiler flags -- and rng.cpp picks a
// table through cpu::active_path(). Every path performs the identical IEEE
// operations per word (the two-halves u64->double conversion with its
// single rounding, the min clamp, the 2u-1 affine map, mul + add for r2,
// all with FP contraction disabled), so the converted values are
// bit-identical on every path; only throughput differs.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/cpu.h"

namespace nwdec::detail {

struct rng_kernel_table {
  const char* name;

  /// out[k] = to_unit(temper(words[k])) for k in [0, count) -- the
  /// canonical conversion of `count` upcoming raw state words, without
  /// advancing any engine state (tempering is pure).
  void (*units_from_words)(const std::uint64_t* words, std::size_t count,
                           double* out);

  /// Polar-pair candidates from 2 * `pairs` upcoming raw state words:
  /// px[p] = 2*unit(words[2p]) - 1, py[p] = 2*unit(words[2p+1]) - 1,
  /// pr2[p] = px^2 + py^2. Requires pairs <= 64 (the callers' peek window
  /// bound; implementations may use fixed stack staging of that size).
  void (*pairs_from_words)(const std::uint64_t* words, std::size_t pairs,
                           double* px, double* py, double* pr2);
};

/// Per-path table getters; nullptr when the build could not compile that
/// ISA (missing -m flag support, non-x86 target). scalar is never null.
const rng_kernel_table* scalar_rng_kernel_table();
const rng_kernel_table* sse2_rng_kernel_table();
const rng_kernel_table* avx2_rng_kernel_table();
const rng_kernel_table* avx512_rng_kernel_table();

/// The table for `path`, or nullptr when that path is not compiled in.
const rng_kernel_table* rng_kernel_table_for(cpu::simd_path path);

/// The table cpu::active_path() selects. Throws logic_invariant_error if
/// the active path has no compiled table (build/dispatch skew).
const rng_kernel_table& active_rng_kernel_table();

}  // namespace nwdec::detail
