#include "util/log.h"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>

#include "util/error.h"
#include "util/json.h"

namespace nwdec::logging {

namespace {

std::atomic<int> g_min_level{static_cast<int>(level::info)};

// The sink state is rarely mutated (daemon startup, test setup) and read
// once per emitted record; one mutex guards both it and the line writes
// so interleaved records from connection threads stay line-atomic.
std::mutex g_sink_mutex;
std::ostream* g_stream = nullptr;  ///< non-owning test/explicit sink
std::ofstream* g_file = nullptr;   ///< owning --log-file sink

void write_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::ostream& out = g_file != nullptr
                          ? static_cast<std::ostream&>(*g_file)
                          : (g_stream != nullptr ? *g_stream : std::cerr);
  out << line << '\n';
  out.flush();
}

std::string format_double(double value) {
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc()) return "0";
  return std::string(buffer, end);
}

}  // namespace

const char* level_name(level value) {
  switch (value) {
    case level::debug: return "debug";
    case level::info: return "info";
    case level::warn: return "warn";
    case level::error: return "error";
    case level::off: return "off";
  }
  return "unknown";
}

level parse_level(const std::string& name) {
  if (name == "debug") return level::debug;
  if (name == "info") return level::info;
  if (name == "warn") return level::warn;
  if (name == "error") return level::error;
  if (name == "off") return level::off;
  throw invalid_argument_error(
      "unknown log level '" + name +
      "' (valid: debug, info, warn, error, off)");
}

void set_min_level(level minimum) {
  g_min_level.store(static_cast<int>(minimum), std::memory_order_relaxed);
}

level min_level() {
  return static_cast<level>(g_min_level.load(std::memory_order_relaxed));
}

bool enabled(level value) {
  return value != level::off &&
         static_cast<int>(value) >=
             g_min_level.load(std::memory_order_relaxed);
}

void set_stream(std::ostream* sink) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_stream = sink;
  if (g_file != nullptr) {
    delete g_file;
    g_file = nullptr;
  }
}

void set_file(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::app);
  if (!*file) {
    throw io_error("cannot open log file '" + path + "' for appending");
  }
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  delete g_file;
  g_file = file.release();  // lives until replaced or process exit
  g_stream = nullptr;
}

std::string timestamp_utc() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm split{};
  gmtime_r(&seconds, &split);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", split.tm_year + 1900,
                split.tm_mon + 1, split.tm_mday, split.tm_hour, split.tm_min,
                split.tm_sec, static_cast<int>(millis));
  return buffer;
}

record::record(level value, const char* component, const char* event)
    : active_(enabled(value)) {
  if (!active_) return;
  line_ << "{\"ts\":\"" << timestamp_utc() << "\",\"level\":\""
        << level_name(value) << "\",\"component\":\""
        << json_escape(component) << "\",\"event\":\"" << json_escape(event)
        << "\"";
}

record::record(record&& other) noexcept : active_(other.active_) {
  if (active_) line_ << other.line_.str();
  other.active_ = false;
}

record::~record() { emit(); }

void record::emit() {
  if (!active_) return;
  active_ = false;
  line_ << "}";
  write_line(line_.str());
}

void record::append_raw(const char* name, const std::string& rendered) {
  line_ << ",\"" << json_escape(name) << "\":" << rendered;
}

record& record::field(const char* name, const std::string& value) {
  if (active_) append_raw(name, "\"" + json_escape(value) + "\"");
  return *this;
}

record& record::field(const char* name, const char* value) {
  return field(name, std::string(value));
}

record& record::field(const char* name, double value) {
  if (active_) append_raw(name, format_double(value));
  return *this;
}

record& record::field(const char* name, bool value) {
  if (active_) append_raw(name, value ? "true" : "false");
  return *this;
}

record event(level value, const char* component, const char* event) {
  return record(value, component, event);
}

}  // namespace nwdec::logging
