// The technology parameter set of the simulation platform (Sec. 6.1).
//
// Defaults reproduce the paper's platform: lithography pitch P_L = 32 nm,
// nanowire pitch P_N = 10 nm, threshold voltages distributed in [0, 1] V,
// per-dose variability sigma_T = 50 mV, minimum contact-group width
// 1.5 * P_L, raw crossbar capacity 16 kB. Parameters the paper delegates to
// its references (addressability window, contact-boundary uncertainty) are
// explicit knobs here, with the defaults documented in DESIGN.md.
#pragma once

#include <cstddef>

#include "util/error.h"

namespace nwdec::device {

/// All technology-level inputs of the decoder and crossbar models.
struct technology {
  // --- geometry -----------------------------------------------------------
  /// Lithography (meso) pitch P_L [nm].
  double litho_pitch_nm = 32.0;
  /// Nanowire (sub-litho) pitch P_N [nm]; set by the MSPT spacer thickness.
  double nanowire_pitch_nm = 10.0;
  /// Minimum contact-group width as a multiple of P_L (layout rule).
  double contact_min_width_factor = 1.5;
  /// Width of the contact-boundary uncertainty band w_b [nm]: a group edge
  /// lands anywhere within +- w_b/2 of its drawn position, so a nanowire
  /// is double-contacted (and discarded) with probability equal to the
  /// overlap of its footprint with the band. The default loses 1.4
  /// nanowires per internal edge in expectation, which calibrates the
  /// Fig. 7 code-length trends to the paper's reported ratios (DESIGN.md).
  double boundary_band_nm = 14.0;
  /// Lithographic overhead per cave (sacrificial wall + clearance) [nm].
  double cave_wall_overhead_nm = 64.0;
  /// Depth of the mesowire contact landing at the decoder end [nm].
  double contact_depth_nm = 48.0;

  // --- electrical ----------------------------------------------------------
  /// Supply voltage [V]; V_T levels are placed strictly inside [0, V_dd].
  double supply_voltage = 1.0;
  /// Standard deviation of V_T contributed by one doping operation [V].
  double sigma_vt = 0.050;
  /// Addressability window half-width as a fraction of the V_T level
  /// spacing; a doping region works when its realized V_T stays within
  /// +- window_fraction * spacing of the nominal level.
  double window_fraction = 0.5;

  // --- device --------------------------------------------------------------
  /// Gate oxide thickness [nm] of the decoder transistors.
  double gate_oxide_nm = 5.0;
  /// Temperature [K].
  double temperature_k = 300.0;

  /// Throws invalid_argument_error when any field is out of its physical
  /// range (non-positive pitch, negative sigma, ...).
  void validate() const;
};

/// The platform of Sec. 6.1 (all defaults above).
technology paper_technology();

}  // namespace nwdec::device
