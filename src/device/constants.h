// Physical constants used by the threshold-voltage model (SI units except
// where noted). Values follow the 2019 SI redefinition; silicon parameters
// are the room-temperature textbook values from Sze & Ng, "Physics of
// Semiconductor Devices" (the paper's reference [14]).
#pragma once

namespace nwdec::device {

/// Elementary charge [C].
inline constexpr double elementary_charge = 1.602176634e-19;

/// Boltzmann constant [J/K].
inline constexpr double boltzmann = 1.380649e-23;

/// Vacuum permittivity [F/m].
inline constexpr double vacuum_permittivity = 8.8541878128e-12;

/// Relative permittivity of silicon.
inline constexpr double silicon_relative_permittivity = 11.7;

/// Relative permittivity of SiO2.
inline constexpr double oxide_relative_permittivity = 3.9;

/// Intrinsic carrier concentration of silicon at 300 K [cm^-3].
inline constexpr double silicon_intrinsic_cm3 = 1.0e10;

/// Silicon band gap at 300 K [eV]; the n+ poly gate Fermi level sits at the
/// conduction band edge, half a gap above midgap.
inline constexpr double silicon_band_gap_ev = 1.12;

}  // namespace nwdec::device
