// The bijection h of Proposition 1: digit value -> final doping level.
//
// h composes the level placement g (vt_levels) with the inverse device
// model f (vt_model): h(v) = N_A(V_T(v)). The decoder library consumes the
// mapping as a plain per-digit dose table so that tests can substitute the
// literal tables from the paper's worked examples.
#pragma once

#include <vector>

#include "codes/word.h"
#include "device/tech_params.h"
#include "device/vt_levels.h"
#include "device/vt_model.h"

namespace nwdec::device {

/// Digit -> doping-level table (index = digit value, entry in cm^-3, all
/// entries positive and strictly increasing).
using dose_table = std::vector<double>;

/// Builds the physical dose table for an n-valued decoder: entry v is the
/// body doping realizing the v-th nominal V_T level.
dose_table physical_dose_table(unsigned radix, const technology& tech);

/// Validates an externally supplied table (used by tests running the
/// paper's example tables): entries must be positive, finite and strictly
/// increasing. Returns the table unchanged.
dose_table validated_dose_table(dose_table table);

}  // namespace nwdec::device
