// Threshold-voltage level placement: the discrete ordering "g" of
// Proposition 1, mapping digit values {0, ..., n-1} to nominal V_T levels
// inside [0, V_dd] (Sec. 6.1 distributes them within 0..1 V).
//
// The supply range is split into n equal bands and each level sits at its
// band midpoint, V_T(v) = V_dd (2v+1)/(2n): binary logic uses
// {0.25, 0.75} V and ternary {1/6, 1/2, 5/6} V. This uses the full 0..1 V
// range the paper allots and maximizes the guard band between levels. The
// level spacing (V_dd / n) also fixes the two operating margins:
//   * the addressing drive: address digit a applies V_A = V_T(a) + spacing/2
//     so regions with level <= a conduct and regions with level > a do not;
//   * the addressability window: a region works when its realized V_T stays
//     within +- window_fraction * spacing of the nominal level.
#pragma once

#include <cstddef>
#include <vector>

#include "codes/word.h"
#include "device/tech_params.h"

namespace nwdec::device {

/// Nominal V_T levels for an n-valued decoder under a given technology.
class vt_levels {
 public:
  /// Places `radix` band-midpoint levels inside [0, V_dd].
  vt_levels(unsigned radix, const technology& tech);

  /// Number of logic values n.
  unsigned radix() const { return radix_; }

  /// Nominal threshold voltage [V] of digit value `v`; v < radix.
  double level(codes::digit v) const;

  /// All levels, indexed by digit value.
  const std::vector<double>& levels() const { return levels_; }

  /// Distance between adjacent levels [V]: V_dd / radix.
  double spacing() const { return spacing_; }

  /// Half-width [V] of the addressability window around each level
  /// (window_fraction * spacing).
  double window_half_width() const { return window_half_width_; }

  /// Gate voltage [V] applied on a mesowire to *drive* digit value `a`:
  /// V_T(a) + spacing/2, i.e. just above the a-th level so that exactly the
  /// regions with level <= a conduct.
  double drive_voltage(codes::digit a) const;

  /// The digit value whose region still conducts under gate voltage
  /// `gate` [V]: the largest v with level(v) < gate, or radix when even
  /// level 0 blocks... returned as the count of conducting levels, i.e. a
  /// region with threshold level t conducts iff t < conducting_levels(gate).
  unsigned conducting_levels(double gate) const;

 private:
  unsigned radix_;
  std::vector<double> levels_;
  double spacing_;
  double window_half_width_;
};

}  // namespace nwdec::device
