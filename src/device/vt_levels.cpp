#include "device/vt_levels.h"

#include "util/error.h"

namespace nwdec::device {

vt_levels::vt_levels(unsigned radix, const technology& tech) : radix_(radix) {
  NWDEC_EXPECTS(radix >= 2, "need at least two threshold levels");
  tech.validate();
  spacing_ = tech.supply_voltage / static_cast<double>(radix);
  window_half_width_ = tech.window_fraction * spacing_;
  levels_.reserve(radix);
  for (unsigned v = 0; v < radix; ++v) {
    levels_.push_back(spacing_ * (static_cast<double>(v) + 0.5));
  }
}

double vt_levels::level(codes::digit v) const {
  NWDEC_EXPECTS(v < radix_, "digit value exceeds the number of levels");
  return levels_[v];
}

double vt_levels::drive_voltage(codes::digit a) const {
  return level(a) + 0.5 * spacing_;
}

unsigned vt_levels::conducting_levels(double gate) const {
  unsigned count = 0;
  while (count < radix_ && levels_[count] < gate) ++count;
  return count;
}

}  // namespace nwdec::device
