#include "device/tech_params.h"

namespace nwdec::device {

void technology::validate() const {
  NWDEC_EXPECTS(litho_pitch_nm > 0.0, "lithography pitch must be positive");
  NWDEC_EXPECTS(nanowire_pitch_nm > 0.0, "nanowire pitch must be positive");
  NWDEC_EXPECTS(nanowire_pitch_nm <= litho_pitch_nm,
                "nanowires are sub-lithographic by definition");
  NWDEC_EXPECTS(contact_min_width_factor > 0.0,
                "contact width factor must be positive");
  NWDEC_EXPECTS(boundary_band_nm >= 0.0,
                "boundary band cannot be negative");
  NWDEC_EXPECTS(cave_wall_overhead_nm >= 0.0,
                "cave overhead cannot be negative");
  NWDEC_EXPECTS(contact_depth_nm >= 0.0, "contact depth cannot be negative");
  NWDEC_EXPECTS(supply_voltage > 0.0, "supply voltage must be positive");
  NWDEC_EXPECTS(sigma_vt >= 0.0, "sigma_vt cannot be negative");
  NWDEC_EXPECTS(window_fraction > 0.0 && window_fraction <= 1.0,
                "window fraction must be in (0, 1]");
  NWDEC_EXPECTS(gate_oxide_nm > 0.0, "oxide thickness must be positive");
  NWDEC_EXPECTS(temperature_k > 0.0, "temperature must be positive");
}

technology paper_technology() {
  technology tech;
  tech.validate();
  return tech;
}

}  // namespace nwdec::device
