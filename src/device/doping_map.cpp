#include "device/doping_map.h"

#include <cmath>

#include "util/error.h"

namespace nwdec::device {

dose_table physical_dose_table(unsigned radix, const technology& tech) {
  const vt_levels levels(radix, tech);
  const vt_model model(tech);
  dose_table table;
  table.reserve(radix);
  for (unsigned v = 0; v < radix; ++v) {
    table.push_back(model.doping_for_vt(levels.level(static_cast<codes::digit>(v))));
  }
  return validated_dose_table(std::move(table));
}

dose_table validated_dose_table(dose_table table) {
  NWDEC_EXPECTS(table.size() >= 2, "a dose table needs at least two levels");
  for (std::size_t v = 0; v < table.size(); ++v) {
    NWDEC_EXPECTS(std::isfinite(table[v]) && table[v] > 0.0,
                  "dose table entries must be positive and finite");
    if (v > 0) {
      NWDEC_EXPECTS(table[v] > table[v - 1],
                    "dose table must be strictly increasing (h is a "
                    "monotonic bijection)");
    }
  }
  return table;
}

}  // namespace nwdec::device
