// Threshold-voltage <-> doping mapping: the "monotonic non-linear function
// f" of Proposition 1, instantiated with the long-channel MOS equations
// from Sze & Ng (the paper's reference [14]).
//
// The decoder transistor is modelled as an n-channel MOSFET with an n+
// poly-Si gate whose body doping (net acceptor concentration N_A) is set by
// the implantation steps:
//
//   V_T(N_A) = V_FB + 2 psi_B + sqrt(2 q eps_Si N_A 2 psi_B) / C_ox
//   psi_B    = (kT/q) ln(N_A / n_i)
//   V_FB     = -E_g/2q - psi_B          (n+ poly gate over p body)
//
// V_T is strictly increasing in N_A, so the inverse N_A(V_T) exists and is
// computed by bisection on log N_A. Only monotonicity and curvature matter
// for the paper's conclusions (they make the dose set {h(v2)-h(v1)}
// pairwise distinct, which drives the fabrication-complexity results).
#pragma once

#include "device/tech_params.h"

namespace nwdec::device {

/// Long-channel MOS threshold-voltage model over body doping.
class vt_model {
 public:
  /// Builds the model from oxide thickness and temperature in `tech`.
  explicit vt_model(const technology& tech);

  /// Threshold voltage [V] for a body doping of `doping_cm3` [cm^-3];
  /// doping must lie inside [min_doping_cm3(), max_doping_cm3()].
  double threshold_voltage(double doping_cm3) const;

  /// Inverse mapping: the body doping [cm^-3] realizing `vt` [V]. Throws
  /// invalid_argument_error when vt is outside the representable range.
  double doping_for_vt(double vt) const;

  /// Gate oxide capacitance per area [F/m^2].
  double oxide_capacitance() const { return c_ox_; }

  /// Smallest / largest doping the model accepts [cm^-3]. The range is
  /// wide enough to cover V_T in [-0.3 V, +3 V].
  static constexpr double min_doping_cm3 = 1.0e14;
  static constexpr double max_doping_cm3 = 1.0e20;

 private:
  double thermal_voltage_;  ///< kT/q [V]
  double c_ox_;             ///< oxide capacitance [F/m^2]
};

}  // namespace nwdec::device
