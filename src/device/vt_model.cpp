#include "device/vt_model.h"

#include <cmath>

#include "device/constants.h"
#include "util/error.h"

namespace nwdec::device {

vt_model::vt_model(const technology& tech) {
  tech.validate();
  thermal_voltage_ =
      boltzmann * tech.temperature_k / elementary_charge;
  c_ox_ = oxide_relative_permittivity * vacuum_permittivity /
          (tech.gate_oxide_nm * 1e-9);
}

double vt_model::threshold_voltage(double doping_cm3) const {
  NWDEC_EXPECTS(doping_cm3 >= min_doping_cm3 && doping_cm3 <= max_doping_cm3,
                "body doping outside the model range");
  const double doping_m3 = doping_cm3 * 1e6;
  const double psi_b =
      thermal_voltage_ * std::log(doping_cm3 / silicon_intrinsic_cm3);
  const double flat_band = -0.5 * silicon_band_gap_ev - psi_b;
  const double eps_si = silicon_relative_permittivity * vacuum_permittivity;
  const double depletion_charge =
      std::sqrt(2.0 * elementary_charge * eps_si * doping_m3 * 2.0 * psi_b);
  return flat_band + 2.0 * psi_b + depletion_charge / c_ox_;
}

double vt_model::doping_for_vt(double vt) const {
  const double vt_lo = threshold_voltage(min_doping_cm3);
  const double vt_hi = threshold_voltage(max_doping_cm3);
  NWDEC_EXPECTS(vt >= vt_lo && vt <= vt_hi,
                "threshold voltage outside the representable range");
  // Bisection on log10(N_A); V_T is strictly increasing in N_A.
  double lo = std::log10(min_doping_cm3);
  double hi = std::log10(max_doping_cm3);
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (threshold_voltage(std::pow(10.0, mid)) < vt) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-13) break;
  }
  return std::pow(10.0, 0.5 * (lo + hi));
}

}  // namespace nwdec::device
