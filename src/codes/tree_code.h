// Tree codes (TC): the n-ary counting code of Sec. 2.3.
//
// A tree code with `free_length` digits over radix n enumerates all n^m
// words in counting order: 0000, 0001, 0002, 0010, ... The decoder uses
// tree codes in *reflected* form (factory.h appends the complement), which
// turns the space into an antichain and therefore uniquely addressable.
#pragma once

#include <cstddef>
#include <vector>

#include "codes/word.h"

namespace nwdec::codes {

/// All n^free_length words of the tree code, in counting order, most
/// significant digit first. Requires radix >= 2 and free_length >= 1;
/// the space size n^free_length must fit comfortably in memory (the
/// experiments use at most a few thousand words).
std::vector<code_word> tree_code_words(unsigned radix,
                                       std::size_t free_length);

/// The single word encoding `index` in base `radix` with `free_length`
/// digits, most significant first. Requires index < radix^free_length.
code_word tree_code_word(unsigned radix, std::size_t free_length,
                         std::size_t index);

}  // namespace nwdec::codes
