#include "codes/indexing.h"

#include <limits>
#include <numeric>

#include "util/error.h"

namespace nwdec::codes {

std::size_t binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::size_t result = 1;
  for (std::size_t j = 1; j <= k; ++j) {
    const std::size_t numerator = n - k + j;
    NWDEC_EXPECTS(result <= std::numeric_limits<std::size_t>::max() / numerator,
                  "binomial coefficient overflows 64 bits");
    result = result * numerator / j;
  }
  return result;
}

std::size_t tree_rank(const code_word& base_word) {
  std::size_t rank = 0;
  for (std::size_t j = 0; j < base_word.length(); ++j) {
    rank = rank * base_word.radix() + base_word.at(j);
  }
  return rank;
}

code_word gray_unrank(unsigned radix, std::size_t free_length,
                      std::size_t index) {
  NWDEC_EXPECTS(radix >= 2, "gray code radix must be at least 2");
  NWDEC_EXPECTS(free_length >= 1, "gray code needs at least one digit");
  std::size_t block = 1;
  for (std::size_t j = 0; j + 1 < free_length; ++j) block *= radix;
  NWDEC_EXPECTS(index < block * radix, "gray index exceeds the space size");

  // Walk the reflected construction: positional value `pos` selects the
  // prefix digit; inside an odd-valued prefix the inner sequence runs
  // backwards, which toggles the `reversed` frame for later digits and
  // mirrors the digit actually written.
  std::vector<digit> digits(free_length);
  std::size_t rest = index;
  bool reversed = false;
  for (std::size_t j = 0; j < free_length; ++j) {
    const std::size_t pos = rest / block;
    rest %= block;
    const std::size_t v = reversed ? (radix - 1 - pos) : pos;
    digits[j] = static_cast<digit>(v);
    if (v % 2 == 1) reversed = !reversed;
    if (j + 1 < free_length) block /= radix;
  }
  return code_word(radix, std::move(digits));
}

std::size_t gray_rank(const code_word& base_word) {
  const unsigned radix = base_word.radix();
  const std::size_t m = base_word.length();
  std::size_t block = 1;
  for (std::size_t j = 0; j + 1 < m; ++j) block *= radix;

  std::size_t rank = 0;
  bool reversed = false;
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t v = base_word.at(j);
    const std::size_t pos = reversed ? (radix - 1 - v) : v;
    rank += pos * block;
    if (v % 2 == 1) reversed = !reversed;
    if (j + 1 < m) block /= radix;
  }
  return rank;
}

namespace {

// Revolving-door recurrence on sorted-set membership of the top element.
std::vector<std::size_t> door_unrank_subset(std::size_t n, std::size_t k,
                                            std::size_t index) {
  if (k == 0) return {};
  if (k == n) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  const std::size_t without_top = binomial(n - 1, k);
  if (index < without_top) return door_unrank_subset(n - 1, k, index);
  const std::size_t inner =
      binomial(n - 1, k - 1) - 1 - (index - without_top);
  std::vector<std::size_t> subset = door_unrank_subset(n - 1, k - 1, inner);
  subset.push_back(n - 1);
  return subset;
}

std::size_t door_rank_subset(const std::vector<bool>& member, std::size_t n,
                             std::size_t k) {
  if (k == 0) return 0;
  if (member[n - 1]) {
    std::vector<bool> rest = member;
    rest[n - 1] = false;
    return binomial(n - 1, k) +
           (binomial(n - 1, k - 1) - 1 - door_rank_subset(rest, n - 1, k - 1));
  }
  return door_rank_subset(member, n - 1, k);
}

// Number of distinct arrangements of the remaining digit multiset.
std::size_t multiset_count(const std::vector<std::size_t>& counts) {
  std::size_t total = 0;
  std::size_t result = 1;
  for (const std::size_t c : counts) {
    for (std::size_t j = 1; j <= c; ++j) {
      ++total;
      const std::size_t numerator = total;
      NWDEC_EXPECTS(
          result <= std::numeric_limits<std::size_t>::max() / numerator,
          "multiset count overflows 64 bits");
      result = result * numerator / j;
    }
  }
  return result;
}

}  // namespace

code_word revolving_door_unrank(std::size_t total, std::size_t chosen,
                                std::size_t index) {
  NWDEC_EXPECTS(total >= 1, "need at least one digit");
  NWDEC_EXPECTS(chosen <= total, "cannot choose more digits than exist");
  NWDEC_EXPECTS(index < binomial(total, chosen),
                "revolving-door index exceeds the space size");
  const std::vector<std::size_t> subset =
      door_unrank_subset(total, chosen, index);
  std::vector<digit> digits(total, 0);
  for (const std::size_t element : subset) digits[element] = 1;
  return code_word(2, std::move(digits));
}

std::size_t revolving_door_rank(const code_word& word) {
  NWDEC_EXPECTS(word.radix() == 2, "revolving-door words are binary");
  std::vector<bool> member(word.length(), false);
  std::size_t ones = 0;
  for (std::size_t j = 0; j < word.length(); ++j) {
    if (word.at(j) == 1) {
      member[j] = true;
      ++ones;
    }
  }
  return door_rank_subset(member, word.length(), ones);
}

code_word hot_lex_unrank(unsigned radix, std::size_t k, std::size_t index) {
  NWDEC_EXPECTS(radix >= 2 && k >= 1, "invalid hot code parameters");
  std::vector<std::size_t> counts(radix, k);
  const std::size_t length = k * radix;
  std::vector<digit> digits(length);
  std::size_t rest = index;
  for (std::size_t p = 0; p < length; ++p) {
    bool placed = false;
    for (unsigned v = 0; v < radix && !placed; ++v) {
      if (counts[v] == 0) continue;
      --counts[v];
      const std::size_t below = multiset_count(counts);
      if (rest < below) {
        digits[p] = static_cast<digit>(v);
        placed = true;
      } else {
        rest -= below;
        ++counts[v];
      }
    }
    NWDEC_EXPECTS(placed, "hot lexicographic index exceeds the space size");
  }
  return code_word(radix, std::move(digits));
}

std::size_t hot_lex_rank(const code_word& word) {
  std::vector<std::size_t> counts = word.value_counts();
  std::size_t rank = 0;
  for (std::size_t p = 0; p < word.length(); ++p) {
    const digit d = word.at(p);
    for (unsigned v = 0; v < d; ++v) {
      if (counts[v] == 0) continue;
      --counts[v];
      rank += multiset_count(counts);
      ++counts[v];
    }
    NWDEC_EXPECTS(counts[d] > 0, "word is not a valid multiset permutation");
    --counts[d];
  }
  return rank;
}

}  // namespace nwdec::codes
