// Arrangement optimization: ordering a fixed set of code words so that the
// number of digit transitions between successive words is minimal.
//
// Section 5 of the paper reduces both decoder cost functions (fabrication
// complexity Phi and variability ||Sigma||_1) to the transition counts of
// the arrangement, so "find the best code" becomes "find the
// minimum-transition Hamiltonian path through the code space". This header
// provides:
//   * exact solvers for small spaces (Held-Karp over <= 20 words, and a
//     fixed-per-step Hamiltonian search used to reproduce the paper's
//     exhaustive arranged-hot-code experiment),
//   * scalable heuristics (greedy nearest-neighbor and 2-opt) for larger
//     spaces,
//   * the transition statistics used by every experiment.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "codes/word.h"

namespace nwdec::codes {

/// Sum of transitions over successive pairs; `cyclic` adds the wrap pair.
std::size_t total_transitions(const std::vector<code_word>& sequence,
                              bool cyclic);

/// Per-digit transition counts over successive pairs (wrap included when
/// `cyclic`); entry j counts how often digit j changes.
std::vector<std::size_t> per_digit_transitions(
    const std::vector<code_word>& sequence, bool cyclic);

/// Result of an arrangement search.
struct arrangement_result {
  std::vector<code_word> sequence;
  std::size_t transitions = 0;  ///< total_transitions(sequence, cyclic)
  bool optimal = false;         ///< true when produced by an exact solver
};

/// Exact minimum-total-transition open path through all words (Held-Karp
/// dynamic program, O(2^W * W^2)); requires words.size() <= 20.
arrangement_result exact_min_arrangement(const std::vector<code_word>& words,
                                         bool cyclic);

/// Searches for a Hamiltonian path (cycle when `cyclic`) in which *every*
/// step costs exactly `per_step` transitions -- the "arranged in a
/// Gray-code fashion" property of Sec. 5.2. Returns nullopt when the DFS
/// exhausts its expansion budget without finding one.
std::optional<arrangement_result> fixed_cost_arrangement(
    const std::vector<code_word>& words, std::size_t per_step, bool cyclic,
    std::size_t expansion_limit = 50'000'000);

/// Greedy nearest-neighbor arrangement starting from words[start]; ties are
/// broken towards the lexicographically smaller word for determinism.
arrangement_result greedy_arrangement(const std::vector<code_word>& words,
                                      std::size_t start = 0);

/// 2-opt local search: repeatedly reverses subsequences while that lowers
/// the total transition count. Improves a greedy arrangement close to the
/// optimum for the space sizes used in the experiments.
arrangement_result two_opt_improve(std::vector<code_word> sequence,
                                   bool cyclic);

}  // namespace nwdec::codes
