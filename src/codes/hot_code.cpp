#include "codes/hot_code.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace nwdec::codes {

std::size_t hot_code_space_size(unsigned radix, std::size_t k) {
  NWDEC_EXPECTS(radix >= 2, "hot code radix must be at least 2");
  NWDEC_EXPECTS(k >= 1, "hot code k must be at least 1");
  // Multinomial (k*n)! / (k!)^n computed as a product of binomials:
  // prod_{i=1..n} C(i*k, k); each factor fits, guard the running product.
  std::size_t result = 1;
  for (unsigned i = 1; i <= radix; ++i) {
    // C(i*k, k)
    std::size_t c = 1;
    for (std::size_t j = 1; j <= k; ++j) {
      const std::size_t numerator = (static_cast<std::size_t>(i) - 1) * k + j;
      NWDEC_EXPECTS(c <= std::numeric_limits<std::size_t>::max() / numerator,
                    "hot code space size overflows 64 bits");
      c = c * numerator / j;
    }
    NWDEC_EXPECTS(result <= std::numeric_limits<std::size_t>::max() / c,
                  "hot code space size overflows 64 bits");
    result *= c;
  }
  return result;
}

std::vector<code_word> hot_code_words(unsigned radix, std::size_t k) {
  const std::size_t size = hot_code_space_size(radix, k);
  NWDEC_EXPECTS(size <= 1'000'000,
                "hot code space too large to enumerate explicitly");

  std::vector<digit> current;
  current.reserve(k * radix);
  for (unsigned v = 0; v < radix; ++v) {
    current.insert(current.end(), k, static_cast<digit>(v));
  }

  std::vector<code_word> out;
  out.reserve(size);
  do {
    out.emplace_back(radix, current);
  } while (std::next_permutation(current.begin(), current.end()));

  NWDEC_ENSURES(out.size() == size,
                "hot code enumeration must match the multinomial size");
  return out;
}

bool is_hot_word(const code_word& word, std::size_t k) {
  const std::vector<std::size_t> counts = word.value_counts();
  return std::all_of(counts.begin(), counts.end(),
                     [k](std::size_t c) { return c == k; });
}

}  // namespace nwdec::codes
