#include "codes/metrics.h"

#include <algorithm>

#include "codes/arrangement.h"
#include "util/error.h"

namespace nwdec::codes {

transition_stats analyze_transitions(const std::vector<code_word>& sequence,
                                     bool cyclic) {
  NWDEC_EXPECTS(!sequence.empty(), "cannot analyze an empty sequence");
  transition_stats stats;
  stats.per_digit = per_digit_transitions(sequence, cyclic);
  stats.total = total_transitions(sequence, cyclic);

  const std::size_t steps =
      sequence.size() < 2 ? 0 : sequence.size() - (cyclic ? 0 : 1);
  stats.mean_per_step =
      steps == 0 ? 0.0
                 : static_cast<double>(stats.total) / static_cast<double>(steps);

  for (std::size_t i = 0; i + 1 < sequence.size(); ++i) {
    stats.max_per_step = std::max(
        stats.max_per_step, sequence[i].transitions_to(sequence[i + 1]));
  }
  if (cyclic && sequence.size() > 1) {
    stats.max_per_step = std::max(
        stats.max_per_step, sequence.back().transitions_to(sequence.front()));
  }

  if (!stats.per_digit.empty()) {
    const auto [lo, hi] =
        std::minmax_element(stats.per_digit.begin(), stats.per_digit.end());
    stats.digit_spread = *hi - *lo;
  }
  return stats;
}

bool is_antichain(const std::vector<code_word>& words) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    for (std::size_t j = 0; j < words.size(); ++j) {
      if (i == j) continue;
      if (words[i].componentwise_le(words[j])) return false;
    }
  }
  return true;
}

bool all_distinct(std::vector<code_word> words) {
  std::sort(words.begin(), words.end());
  return std::adjacent_find(words.begin(), words.end()) == words.end();
}

void validate_code(const code& c) {
  NWDEC_ENSURES(!c.words.empty(), "code has no words");
  for (const code_word& w : c.words) {
    NWDEC_ENSURES(w.radix() == c.radix, "word radix differs from code radix");
    NWDEC_ENSURES(w.length() == c.length,
                  "word length differs from code length");
  }
  NWDEC_ENSURES(all_distinct(c.words), "code words are not distinct");
  NWDEC_ENSURES(is_antichain(c.words),
                "code is not an antichain: some address would select "
                "multiple nanowires");
}

}  // namespace nwdec::codes
