// Factory assembling ready-to-use codes from (type, radix, full length).
//
// The full length M is the word length the decoder sees:
//   * tree-family codes (TC, GC, BGC) have M/2 free digits and are returned
//     reflected (each word concatenated with its complement, Sec. 2.3), so
//     M must be even; the space size is Omega = radix^(M/2);
//   * hot codes (HC, AHC) use the word as-is with k = M / radix occurrences
//     of each value, so M must be divisible by the radix;
//     Omega = M! / (k!)^radix.
#pragma once

#include <cstddef>

#include "codes/code_space.h"

namespace nwdec::codes {

/// Builds the arranged, validated code for the requested family.
/// Throws invalid_argument_error when (radix, full_length) is not
/// compatible with the family (see header comment).
code make_code(code_type type, unsigned radix, std::size_t full_length);

/// Reflects a base sequence: every word is replaced by word+complement,
/// doubling the length. Exposed for tests and for custom arrangements.
std::vector<code_word> reflect_words(const std::vector<code_word>& base);

}  // namespace nwdec::codes
