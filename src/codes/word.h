// Code words for nanowire addressing.
//
// A code word is a fixed-length sequence of digits over an n-valued logic
// ("radix"). Digit value v corresponds to the v-th threshold voltage level
// of the doping region it patterns (see device/vt_levels.h). The word
// operations here implement the paper's code machinery: the transition
// count between successive words (the quantity Gray arrangements minimize),
// the complement used to build reflected codes, and the componentwise cover
// relation that determines unique addressability (decoder/addressing.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.h"

namespace nwdec::codes {

/// One digit of a code word; values live in {0, ..., radix-1}.
using digit = std::uint8_t;

/// Fixed-length word of digits over an n-valued logic.
class code_word {
 public:
  /// Creates the all-zero word of the given length.
  code_word(unsigned radix, std::size_t length);

  /// Creates a word from explicit digits; every digit must be < radix.
  code_word(unsigned radix, std::vector<digit> digits);

  /// Number of logic values (n); at least 2.
  unsigned radix() const { return radix_; }
  /// Number of digits (M).
  std::size_t length() const { return digits_.size(); }

  /// Bounds-checked digit access.
  digit at(std::size_t pos) const;
  /// Sets the digit at `pos`; `value` must be < radix.
  void set(std::size_t pos, digit value);

  /// Underlying digits, most significant first.
  const std::vector<digit>& digits() const { return digits_; }

  /// Number of positions where this word and `other` differ. Both words
  /// must have the same radix and length. This is the "number of
  /// transitions" between successive code words in the paper.
  std::size_t transitions_to(const code_word& other) const;

  /// The complement word: each digit v is replaced by (radix-1) - v, i.e.
  /// the word is subtracted from the largest word of the code space
  /// (Sec. 2.3 of the paper).
  code_word complement() const;

  /// The reflected word: this word with its complement appended, doubling
  /// the length. Reflected words are what the decoder actually uses, since
  /// reflection makes tree-family codes uniquely addressable.
  code_word reflected() const;

  /// True when every digit of this word is <= the corresponding digit of
  /// `other`. Under the "conducts iff applied level >= threshold level"
  /// rule, nanowire `this` conducts at the address of `other` exactly when
  /// this covers-or-equals relation holds; unique addressability therefore
  /// requires the code to be an antichain under it.
  bool componentwise_le(const code_word& other) const;

  /// Count of each digit value, indexed by value (size == radix). Hot codes
  /// require every count to equal k.
  std::vector<std::size_t> value_counts() const;

  /// Sum of all digits; constant across a hot code space.
  std::size_t digit_sum() const;

  /// Digits concatenated as characters, e.g. "0121"; digits >= 10 are
  /// rendered in brackets. For logs and test failure messages.
  std::string to_string() const;

  friend bool operator==(const code_word& a, const code_word& b) {
    return a.radix_ == b.radix_ && a.digits_ == b.digits_;
  }
  friend auto operator<=>(const code_word& a, const code_word& b) = default;

 private:
  unsigned radix_;
  std::vector<digit> digits_;
};

/// Span form of code_word::componentwise_le for flat digit buffers (e.g.
/// rows of the pattern matrix): true when a[j] <= b[j] for all j < length.
/// The callers have already validated radix and length agreement, so this
/// is the unchecked inner-loop form the yield engine and addressed_rows use.
inline bool componentwise_le(const digit* a, const digit* b,
                             std::size_t length) {
  for (std::size_t j = 0; j < length; ++j) {
    if (a[j] > b[j]) return false;
  }
  return true;
}

/// Parses a word from a digit string like "0121" with the given radix;
/// provided for tests and examples.
code_word parse_word(unsigned radix, const std::string& text);

}  // namespace nwdec::codes
