#include "codes/tree_code.h"

#include <cmath>

#include "util/error.h"

namespace nwdec::codes {

namespace {

std::size_t checked_space_size(unsigned radix, std::size_t free_length) {
  NWDEC_EXPECTS(radix >= 2, "tree code radix must be at least 2");
  NWDEC_EXPECTS(free_length >= 1, "tree code needs at least one digit");
  std::size_t size = 1;
  for (std::size_t i = 0; i < free_length; ++i) {
    NWDEC_EXPECTS(size <= (std::size_t{1} << 40) / radix,
                  "tree code space too large to enumerate");
    size *= radix;
  }
  return size;
}

}  // namespace

code_word tree_code_word(unsigned radix, std::size_t free_length,
                         std::size_t index) {
  const std::size_t size = checked_space_size(radix, free_length);
  NWDEC_EXPECTS(index < size, "tree code index exceeds the space size");
  std::vector<digit> digits(free_length, 0);
  std::size_t rest = index;
  for (std::size_t pos = free_length; pos-- > 0;) {
    digits[pos] = static_cast<digit>(rest % radix);
    rest /= radix;
  }
  return code_word(radix, std::move(digits));
}

std::vector<code_word> tree_code_words(unsigned radix,
                                       std::size_t free_length) {
  const std::size_t size = checked_space_size(radix, free_length);
  std::vector<code_word> out;
  out.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    out.push_back(tree_code_word(radix, free_length, i));
  }
  return out;
}

}  // namespace nwdec::codes
