// Code-space metrics: the structural properties the decoder analysis
// consumes -- transition statistics, per-digit balance, and the antichain
// property that guarantees unique addressability.
#pragma once

#include <cstddef>
#include <vector>

#include "codes/code_space.h"
#include "codes/word.h"

namespace nwdec::codes {

/// Summary of the transition structure of an arranged sequence.
struct transition_stats {
  std::size_t total = 0;            ///< sum of transitions over the sequence
  double mean_per_step = 0.0;       ///< total / (steps)
  std::size_t max_per_step = 0;     ///< worst single step
  std::vector<std::size_t> per_digit;  ///< how often each digit changes
  std::size_t digit_spread = 0;     ///< max - min of per_digit
};

/// Computes transition statistics of `sequence`; `cyclic` includes the
/// wrap-around step.
transition_stats analyze_transitions(const std::vector<code_word>& sequence,
                                     bool cyclic);

/// True when no word of `words` is componentwise <= another (distinct)
/// word. Under the threshold-conduction rule this is exactly the condition
/// for every word to address one and only one nanowire pattern.
bool is_antichain(const std::vector<code_word>& words);

/// True when all words are pairwise distinct.
bool all_distinct(std::vector<code_word> words);

/// Validates that `c` is internally consistent: words all share the
/// declared radix/length, are distinct, and form an antichain (reflected
/// tree-family codes and hot codes both must). Throws logic_invariant_error
/// with a description on failure; returns normally otherwise.
void validate_code(const code& c);

}  // namespace nwdec::codes
