#include "codes/factory.h"

#include "codes/arranged_hot_code.h"
#include "codes/balanced_gray.h"
#include "codes/gray_code.h"
#include "codes/hot_code.h"
#include "codes/metrics.h"
#include "codes/tree_code.h"
#include "util/error.h"

namespace nwdec::codes {

std::vector<code_word> reflect_words(const std::vector<code_word>& base) {
  std::vector<code_word> out;
  out.reserve(base.size());
  for (const code_word& w : base) out.push_back(w.reflected());
  return out;
}

namespace {

// Names the offending design point in every factory diagnostic, so a bad
// grid handed to the sweep engine fails with "which point" attached.
std::string describe(code_type type, unsigned radix,
                     std::size_t full_length) {
  return code_type_name(type) + " with radix " + std::to_string(radix) +
         " and full length " + std::to_string(full_length);
}

}  // namespace

code make_code(code_type type, unsigned radix, std::size_t full_length) {
  NWDEC_EXPECTS(radix >= 2, "cannot build " + describe(type, radix,
                                                       full_length) +
                                ": codes need at least two logic values");
  NWDEC_EXPECTS(full_length >= 2,
                "cannot build " + describe(type, radix, full_length) +
                    ": codes need at least two digits");

  code out;
  out.type = type;
  out.radix = radix;
  out.length = full_length;

  switch (type) {
    case code_type::tree:
    case code_type::gray:
    case code_type::balanced_gray: {
      NWDEC_EXPECTS(full_length % 2 == 0,
                    "cannot build " + describe(type, radix, full_length) +
                        ": tree-family codes are reflected, so the full "
                        "length must be even");
      const std::size_t free_length = full_length / 2;
      std::vector<code_word> base;
      if (type == code_type::tree) {
        base = tree_code_words(radix, free_length);
      } else if (type == code_type::gray) {
        base = gray_code_words(radix, free_length);
      } else {
        base = balanced_gray_code_words(radix, free_length);
      }
      out.words = reflect_words(base);
      out.reflected = true;
      break;
    }
    case code_type::hot:
    case code_type::arranged_hot: {
      NWDEC_EXPECTS(full_length % radix == 0,
                    "cannot build " + describe(type, radix, full_length) +
                        ": hot codes need a full length divisible by the "
                        "radix");
      const std::size_t k = full_length / radix;
      out.words = type == code_type::hot ? hot_code_words(radix, k)
                                         : arranged_hot_code_words(radix, k);
      out.reflected = false;
      break;
    }
  }

  validate_code(out);
  return out;
}

}  // namespace nwdec::codes
