#include "codes/arranged_hot_code.h"

#include <algorithm>

#include "codes/arrangement.h"
#include "codes/hot_code.h"
#include "util/error.h"

namespace nwdec::codes {

namespace {

// Recursive revolving-door list of k-subsets of {0, ..., n-1} (Knuth 4A,
// "revolving door" / Nijenhuis-Wilf): R(n, k) = R(n-1, k) followed by
// R(n-1, k-1) reversed with element n-1 added to each subset. Successive
// subsets -- including the wrap -- differ by removing one element and
// adding another.
void revolving_door_subsets(std::size_t n, std::size_t k,
                            std::vector<std::vector<std::size_t>>& out) {
  if (k == 0) {
    out.push_back({});
    return;
  }
  if (k == n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    out.push_back(std::move(all));
    return;
  }
  std::vector<std::vector<std::size_t>> keep;
  revolving_door_subsets(n - 1, k, keep);
  std::vector<std::vector<std::size_t>> add;
  revolving_door_subsets(n - 1, k - 1, add);

  out.reserve(out.size() + keep.size() + add.size());
  for (auto& subset : keep) out.push_back(std::move(subset));
  for (auto it = add.rbegin(); it != add.rend(); ++it) {
    it->push_back(n - 1);
    out.push_back(std::move(*it));
  }
}

}  // namespace

std::vector<code_word> revolving_door_words(std::size_t total,
                                            std::size_t chosen) {
  NWDEC_EXPECTS(total >= 1, "revolving door needs at least one element");
  NWDEC_EXPECTS(chosen <= total, "cannot choose more elements than exist");
  std::vector<std::vector<std::size_t>> subsets;
  revolving_door_subsets(total, chosen, subsets);

  std::vector<code_word> out;
  out.reserve(subsets.size());
  for (const auto& subset : subsets) {
    std::vector<digit> digits(total, 0);
    for (const std::size_t element : subset) digits[element] = 1;
    out.emplace_back(2u, std::move(digits));
  }
  return out;
}

std::vector<code_word> arranged_hot_code_words(unsigned radix,
                                               std::size_t k) {
  NWDEC_EXPECTS(radix >= 2, "hot code radix must be at least 2");
  NWDEC_EXPECTS(k >= 1, "hot code k must be at least 1");

  if (radix == 2) {
    // Constructive path: revolving-door over M = 2k positions choosing the
    // k positions holding value 1.
    std::vector<code_word> words = revolving_door_words(2 * k, k);
    NWDEC_ENSURES(
        total_transitions(words, /*cyclic=*/true) == 2 * words.size(),
        "revolving-door arrangement must cost exactly 2 per step");
    return words;
  }

  const std::vector<code_word> words = hot_code_words(radix, k);
  if (const auto exact =
          fixed_cost_arrangement(words, /*per_step=*/2, /*cyclic=*/false)) {
    return exact->sequence;
  }
  // Beyond the exact-search budget: greedy nearest-neighbor then 2-opt.
  arrangement_result best = greedy_arrangement(words);
  best = two_opt_improve(std::move(best.sequence), /*cyclic=*/false);
  return best.sequence;
}

}  // namespace nwdec::codes
