#include "codes/balanced_gray.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "codes/gray_code.h"
#include "util/error.h"

namespace nwdec::codes {

namespace {

// The search works on integer node ids: the mixed-radix encoding of the
// word digits, most significant digit first.
struct hamming_graph {
  unsigned radix;
  std::size_t digits;
  std::size_t node_count;
  // pow_[pos] = radix^(digits-1-pos): weight of digit `pos` in the id.
  std::vector<std::size_t> pow_;

  hamming_graph(unsigned n, std::size_t m) : radix(n), digits(m) {
    pow_.resize(m);
    std::size_t w = 1;
    for (std::size_t pos = m; pos-- > 0;) {
      pow_[pos] = w;
      w *= n;
    }
    node_count = w;
  }

  unsigned digit_of(std::size_t id, std::size_t pos) const {
    return static_cast<unsigned>(id / pow_[pos] % radix);
  }

  std::size_t with_digit(std::size_t id, std::size_t pos,
                         unsigned value) const {
    const unsigned current = digit_of(id, pos);
    return id + (static_cast<std::size_t>(value) - current) * pow_[pos];
  }

  code_word to_word(std::size_t id) const {
    std::vector<digit> out(digits);
    for (std::size_t pos = 0; pos < digits; ++pos) {
      out[pos] = static_cast<digit>(digit_of(id, pos));
    }
    return code_word(radix, std::move(out));
  }
};

struct search_state {
  const hamming_graph& graph;
  std::vector<std::size_t> budget;       // remaining transitions per digit
  std::vector<bool> visited;
  std::vector<std::size_t> path;         // node ids
  std::uint64_t expansions = 0;
  std::uint64_t expansion_limit;
  // Move-ordering heuristic: Warnsdorff-first suits odd radices, whose
  // tight budgets otherwise strand nodes; budget-first keeps binary
  // searches on the perfectly balanced track.
  bool degree_first;
  // Deterministic tie-break salt; different salts explore different
  // corners of the search tree (random-restart flavor without an RNG).
  std::uint64_t salt;

  search_state(const hamming_graph& g, std::vector<std::size_t> targets,
               std::uint64_t limit, bool degree_first_ordering,
               std::uint64_t tie_salt)
      : graph(g),
        budget(std::move(targets)),
        visited(g.node_count, false),
        expansion_limit(limit),
        degree_first(degree_first_ordering),
        salt(tie_salt) {
    path.reserve(g.node_count);
  }

  std::uint64_t tie_key(std::size_t node) const {
    // splitmix64-style scramble of (node, salt).
    std::uint64_t x = (static_cast<std::uint64_t>(node) + 1) * 0x9e3779b97f4a7c15ULL + salt;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  // Count of unvisited neighbors reachable under the current budget; used
  // as a Warnsdorff-style tie breaker (visit tight nodes first).
  std::size_t open_degree(std::size_t id) const {
    std::size_t deg = 0;
    for (std::size_t pos = 0; pos < graph.digits; ++pos) {
      if (budget[pos] == 0) continue;
      for (unsigned v = 0; v < graph.radix; ++v) {
        if (v == graph.digit_of(id, pos)) continue;
        if (!visited[graph.with_digit(id, pos, v)]) ++deg;
      }
    }
    return deg;
  }

  bool closes_cycle(std::size_t last) const {
    const std::size_t start = path.front();
    std::size_t differing = 0;
    std::size_t diff_pos = 0;
    for (std::size_t pos = 0; pos < graph.digits; ++pos) {
      if (graph.digit_of(last, pos) != graph.digit_of(start, pos)) {
        ++differing;
        diff_pos = pos;
      }
    }
    return differing == 1 && budget[diff_pos] >= 1;
  }

  bool extend(std::size_t current) {
    if (++expansions > expansion_limit) return false;
    if (path.size() == graph.node_count) return closes_cycle(current);

    struct move {
      std::size_t pos;
      std::size_t next;
      std::size_t remaining;
      std::size_t degree;
    };
    std::vector<move> moves;
    for (std::size_t pos = 0; pos < graph.digits; ++pos) {
      if (budget[pos] == 0) continue;
      for (unsigned v = 0; v < graph.radix; ++v) {
        if (v == graph.digit_of(current, pos)) continue;
        const std::size_t next = graph.with_digit(current, pos, v);
        if (visited[next]) continue;
        moves.push_back({pos, next, budget[pos], 0});
      }
    }
    for (move& m : moves) m.degree = open_degree(m.next);
    std::sort(moves.begin(), moves.end(),
              [this](const move& a, const move& b) {
                if (degree_first) {
                  if (a.degree != b.degree) return a.degree < b.degree;
                  if (a.remaining != b.remaining)
                    return a.remaining > b.remaining;
                } else {
                  if (a.remaining != b.remaining)
                    return a.remaining > b.remaining;
                  if (a.degree != b.degree) return a.degree < b.degree;
                }
                return tie_key(a.next) < tie_key(b.next);
              });

    for (const move& m : moves) {
      --budget[m.pos];
      visited[m.next] = true;
      path.push_back(m.next);
      if (extend(m.next)) return true;
      path.pop_back();
      visited[m.next] = false;
      ++budget[m.pos];
    }
    return false;
  }
};

}  // namespace

std::vector<std::size_t> balanced_transition_targets(
    unsigned radix, std::size_t free_length) {
  NWDEC_EXPECTS(radix >= 2, "balanced gray radix must be at least 2");
  NWDEC_EXPECTS(free_length >= 1, "balanced gray needs at least one digit");
  std::size_t total = 1;
  for (std::size_t i = 0; i < free_length; ++i) total *= radix;

  const std::size_t m = free_length;
  std::vector<std::size_t> targets(m, 0);
  if (radix == 2) {
    // Binary cyclic Gray codes toggle each bit an even number of times, so
    // distribute `total` over m digits in even quanta.
    const std::size_t pairs = total / 2;
    const std::size_t base = pairs / m;
    std::size_t extra = pairs % m;
    for (std::size_t pos = 0; pos < m; ++pos) {
      targets[pos] = 2 * (base + (pos < extra ? 1 : 0));
    }
  } else {
    const std::size_t base = total / m;
    std::size_t extra = total % m;
    for (std::size_t pos = 0; pos < m; ++pos) {
      targets[pos] = base + (pos < extra ? 1 : 0);
    }
  }
  NWDEC_ENSURES(std::accumulate(targets.begin(), targets.end(),
                                std::size_t{0}) == total,
                "transition targets must sum to the cycle length");
  return targets;
}

std::vector<code_word> balanced_gray_code_words(unsigned radix,
                                                std::size_t free_length) {
  const hamming_graph graph(radix, free_length);
  NWDEC_EXPECTS(graph.node_count <= 4096,
                "balanced gray search limited to 4096 words");

  const std::vector<std::size_t> ideal =
      balanced_transition_targets(radix, free_length);

  // Try the ideal (tight) budget first with a generous search, then retry
  // with uniformly slackened budgets and a fail-fast limit: a little slack
  // on every digit turns the exponential tail of the DFS into seconds
  // while keeping the per-digit counts within a small spread.
  const std::size_t relax_quantum = radix == 2 ? 2 : 1;
  for (std::size_t relax = 0; relax <= 6; ++relax) {
    for (std::uint64_t restart = 0; restart < 4; ++restart) {
      for (const bool degree_first : {false, true}) {
        std::vector<std::size_t> targets = ideal;
        for (std::size_t pos = 0; pos < free_length; ++pos) {
          targets[pos] += relax * relax_quantum;
        }
        search_state state(graph, std::move(targets), /*limit=*/1'500'000,
                           degree_first, restart * 0x2545f4914f6cdd1dULL);
        state.visited[0] = true;
        state.path.push_back(0);
        if (state.extend(0)) {
          std::vector<code_word> out;
          out.reserve(state.path.size());
          for (const std::size_t id : state.path) {
            out.push_back(graph.to_word(id));
          }
          NWDEC_ENSURES(is_gray_sequence(out, 1, /*cyclic=*/true),
                        "balanced gray search must return a cyclic Gray code");
          return out;
        }
      }
    }
  }
  // All budgets and heuristics exhausted: the DFS construction does not
  // scale to this space (observed for binary free_length >= 7 and ternary
  // free_length >= 5). Refuse rather than silently hand back an
  // unbalanced code.
  throw invalid_argument_error(
      "balanced Gray search could not balance this code space (" +
      std::to_string(graph.node_count) +
      " words); use the plain Gray code for spaces of this size");
}

namespace {

bool extend_prefix(const hamming_graph& graph, std::vector<bool>& visited,
                   std::vector<std::size_t>& budget,
                   std::vector<std::size_t>& path, std::size_t count,
                   std::uint64_t& expansions) {
  if (path.size() == count) return true;
  if (++expansions > 5'000'000) return false;
  const std::size_t current = path.back();
  for (std::size_t pos = 0; pos < graph.digits; ++pos) {
    if (budget[pos] == 0) continue;
    for (unsigned v = 0; v < graph.radix; ++v) {
      if (v == graph.digit_of(current, pos)) continue;
      const std::size_t next = graph.with_digit(current, pos, v);
      if (visited[next]) continue;
      visited[next] = true;
      --budget[pos];
      path.push_back(next);
      if (extend_prefix(graph, visited, budget, path, count, expansions)) {
        return true;
      }
      path.pop_back();
      ++budget[pos];
      visited[next] = false;
    }
  }
  return false;
}

}  // namespace

std::optional<std::vector<code_word>> constrained_gray_prefix(
    unsigned radix, std::size_t free_length, std::size_t count,
    std::size_t max_changes) {
  NWDEC_EXPECTS(count >= 1, "need at least one word");
  const hamming_graph graph(radix, free_length);
  NWDEC_EXPECTS(count <= graph.node_count,
                "prefix longer than the code space");
  // Each step changes exactly one digit, so the budgets bound the length.
  if (count - 1 > max_changes * free_length) return std::nullopt;

  std::vector<bool> visited(graph.node_count, false);
  std::vector<std::size_t> budget(free_length, max_changes);
  std::vector<std::size_t> path{0};
  visited[0] = true;
  std::uint64_t expansions = 0;
  if (!extend_prefix(graph, visited, budget, path, count, expansions)) {
    return std::nullopt;
  }
  std::vector<code_word> out;
  out.reserve(path.size());
  for (const std::size_t id : path) out.push_back(graph.to_word(id));
  NWDEC_ENSURES(is_gray_sequence(out, 1, /*cyclic=*/false),
                "constrained prefix must be a Gray sequence");
  return out;
}

}  // namespace nwdec::codes
