#include "codes/arrangement.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>

#include "util/error.h"

namespace nwdec::codes {

namespace {

// Pairwise transition-count table; all solvers work on indices into it.
std::vector<std::vector<std::size_t>> cost_table(
    const std::vector<code_word>& words) {
  const std::size_t n = words.size();
  std::vector<std::vector<std::size_t>> cost(n, std::vector<std::size_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::size_t t = words[i].transitions_to(words[j]);
      cost[i][j] = t;
      cost[j][i] = t;
    }
  }
  return cost;
}

arrangement_result make_result(const std::vector<code_word>& words,
                               const std::vector<std::size_t>& order,
                               bool cyclic, bool optimal) {
  arrangement_result out;
  out.sequence.reserve(order.size());
  for (const std::size_t idx : order) out.sequence.push_back(words[idx]);
  out.transitions = total_transitions(out.sequence, cyclic);
  out.optimal = optimal;
  return out;
}

}  // namespace

std::size_t total_transitions(const std::vector<code_word>& sequence,
                              bool cyclic) {
  if (sequence.size() < 2) return 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i + 1 < sequence.size(); ++i) {
    total += sequence[i].transitions_to(sequence[i + 1]);
  }
  if (cyclic) total += sequence.back().transitions_to(sequence.front());
  return total;
}

std::vector<std::size_t> per_digit_transitions(
    const std::vector<code_word>& sequence, bool cyclic) {
  NWDEC_EXPECTS(!sequence.empty(), "per-digit transitions of empty sequence");
  std::vector<std::size_t> counts(sequence.front().length(), 0);
  const auto add_pair = [&counts](const code_word& a, const code_word& b) {
    for (std::size_t pos = 0; pos < counts.size(); ++pos) {
      if (a.at(pos) != b.at(pos)) ++counts[pos];
    }
  };
  for (std::size_t i = 0; i + 1 < sequence.size(); ++i) {
    add_pair(sequence[i], sequence[i + 1]);
  }
  if (cyclic && sequence.size() > 1) {
    add_pair(sequence.back(), sequence.front());
  }
  return counts;
}

arrangement_result exact_min_arrangement(const std::vector<code_word>& words,
                                         bool cyclic) {
  const std::size_t n = words.size();
  NWDEC_EXPECTS(n >= 1, "cannot arrange an empty word set");
  NWDEC_EXPECTS(n <= 20, "exact arrangement limited to 20 words (Held-Karp)");
  if (n == 1) return make_result(words, {0}, cyclic, true);

  const auto cost = cost_table(words);
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max() / 4;
  const std::size_t full = std::size_t{1} << n;

  // dp[mask][last] = cheapest path visiting `mask`, ending at `last`.
  // For open paths any start is allowed; for cycles fix start at 0.
  std::vector<std::vector<std::size_t>> dp(full,
                                           std::vector<std::size_t>(n, kInf));
  std::vector<std::vector<std::uint8_t>> parent(
      full, std::vector<std::uint8_t>(n, 0xff));
  if (cyclic) {
    dp[1][0] = 0;
  } else {
    for (std::size_t v = 0; v < n; ++v) dp[std::size_t{1} << v][v] = 0;
  }

  for (std::size_t mask = 1; mask < full; ++mask) {
    for (std::size_t last = 0; last < n; ++last) {
      const std::size_t base = dp[mask][last];
      if (base >= kInf || !(mask & (std::size_t{1} << last))) continue;
      for (std::size_t next = 0; next < n; ++next) {
        if (mask & (std::size_t{1} << next)) continue;
        const std::size_t next_mask = mask | (std::size_t{1} << next);
        const std::size_t candidate = base + cost[last][next];
        if (candidate < dp[next_mask][next]) {
          dp[next_mask][next] = candidate;
          parent[next_mask][next] = static_cast<std::uint8_t>(last);
        }
      }
    }
  }

  std::size_t best = kInf;
  std::size_t best_last = 0;
  for (std::size_t last = 0; last < n; ++last) {
    const std::size_t closing = cyclic ? cost[last][0] : 0;
    if (dp[full - 1][last] >= kInf) continue;
    const std::size_t candidate = dp[full - 1][last] + closing;
    if (candidate < best) {
      best = candidate;
      best_last = last;
    }
  }
  NWDEC_ENSURES(best < kInf, "Held-Karp must find a path on a complete graph");

  std::vector<std::size_t> order(n);
  std::size_t mask = full - 1;
  std::size_t last = best_last;
  for (std::size_t i = n; i-- > 0;) {
    order[i] = last;
    const std::uint8_t prev = parent[mask][last];
    mask &= ~(std::size_t{1} << last);
    last = prev;
  }
  return make_result(words, order, cyclic, true);
}

std::optional<arrangement_result> fixed_cost_arrangement(
    const std::vector<code_word>& words, std::size_t per_step, bool cyclic,
    std::size_t expansion_limit) {
  const std::size_t n = words.size();
  NWDEC_EXPECTS(n >= 1, "cannot arrange an empty word set");
  if (n == 1) return make_result(words, {0}, cyclic, true);

  // Adjacency restricted to edges of exactly `per_step` transitions.
  std::vector<std::vector<std::size_t>> adjacency(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && words[i].transitions_to(words[j]) == per_step) {
        adjacency[i].push_back(j);
      }
    }
  }

  std::vector<bool> visited(n, false);
  std::vector<std::size_t> path;
  path.reserve(n);
  std::size_t expansions = 0;

  const auto open_degree = [&](std::size_t v) {
    std::size_t deg = 0;
    for (const std::size_t w : adjacency[v]) {
      if (!visited[w]) ++deg;
    }
    return deg;
  };

  // Warnsdorff-ordered DFS for a Hamiltonian path in the fixed-cost graph.
  const std::function<bool(std::size_t)> extend = [&](std::size_t v) -> bool {
    if (++expansions > expansion_limit) return false;
    if (path.size() == n) {
      if (!cyclic) return true;
      return words[v].transitions_to(words[path.front()]) == per_step;
    }
    std::vector<std::pair<std::size_t, std::size_t>> next;  // (degree, node)
    for (const std::size_t w : adjacency[v]) {
      if (!visited[w]) next.emplace_back(open_degree(w), w);
    }
    std::sort(next.begin(), next.end());
    for (const auto& [deg, w] : next) {
      visited[w] = true;
      path.push_back(w);
      if (extend(w)) return true;
      path.pop_back();
      visited[w] = false;
    }
    return false;
  };

  // Starting from the lexicographically smallest word keeps the output
  // deterministic; try other starts only if the first fails.
  for (std::size_t start = 0; start < n; ++start) {
    std::fill(visited.begin(), visited.end(), false);
    path.clear();
    visited[start] = true;
    path.push_back(start);
    if (extend(start)) {
      return make_result(words, path, cyclic, true);
    }
    if (expansions > expansion_limit) break;
  }
  return std::nullopt;
}

arrangement_result greedy_arrangement(const std::vector<code_word>& words,
                                      std::size_t start) {
  const std::size_t n = words.size();
  NWDEC_EXPECTS(n >= 1, "cannot arrange an empty word set");
  NWDEC_EXPECTS(start < n, "greedy start index out of range");

  std::vector<bool> used(n, false);
  std::vector<std::size_t> order;
  order.reserve(n);
  used[start] = true;
  order.push_back(start);
  while (order.size() < n) {
    const code_word& current = words[order.back()];
    std::size_t best = n;
    std::size_t best_cost = std::numeric_limits<std::size_t>::max();
    for (std::size_t j = 0; j < n; ++j) {
      if (used[j]) continue;
      const std::size_t c = current.transitions_to(words[j]);
      if (c < best_cost ||
          (c == best_cost && best < n && words[j] < words[best])) {
        best_cost = c;
        best = j;
      }
    }
    used[best] = true;
    order.push_back(best);
  }
  return make_result(words, order, /*cyclic=*/false, false);
}

arrangement_result two_opt_improve(std::vector<code_word> sequence,
                                   bool cyclic) {
  NWDEC_EXPECTS(!sequence.empty(), "cannot improve an empty sequence");
  const std::size_t n = sequence.size();
  const auto edge = [&](std::size_t a, std::size_t b) {
    return sequence[a].transitions_to(sequence[b]);
  };

  bool improved = true;
  while (improved && n >= 4) {
    improved = false;
    // Reversing sequence[i..j] replaces edges (i-1,i) and (j,j+1) with
    // (i-1,j) and (i,j+1). For open paths the boundary edges are skipped.
    for (std::size_t i = 1; i + 1 < n; ++i) {
      for (std::size_t j = i + 1; j < n - (cyclic ? 0 : 1); ++j) {
        if (j >= n) break;
        const std::size_t before = edge(i - 1, i) +
                                   (j + 1 < n ? edge(j, j + 1)
                                              : (cyclic ? edge(j, 0) : 0));
        const std::size_t after = edge(i - 1, j) +
                                  (j + 1 < n ? edge(i, j + 1)
                                             : (cyclic ? edge(i, 0) : 0));
        if (after < before) {
          std::reverse(sequence.begin() + static_cast<std::ptrdiff_t>(i),
                       sequence.begin() + static_cast<std::ptrdiff_t>(j + 1));
          improved = true;
        }
      }
    }
  }

  arrangement_result out;
  out.transitions = total_transitions(sequence, cyclic);
  out.sequence = std::move(sequence);
  out.optimal = false;
  return out;
}

}  // namespace nwdec::codes
