#include "codes/gray_code.h"

#include "util/error.h"

namespace nwdec::codes {

namespace {

// Recursive reflected construction: G(m) prefixes each value v in 0..n-1 to
// G(m-1), reversing the sub-sequence for odd v so the junctions change only
// the new leading digit.
void build(unsigned radix, std::size_t free_length,
           std::vector<std::vector<digit>>& out) {
  if (free_length == 0) {
    out.push_back({});
    return;
  }
  std::vector<std::vector<digit>> inner;
  build(radix, free_length - 1, inner);
  out.reserve(inner.size() * radix);
  for (unsigned v = 0; v < radix; ++v) {
    if (v % 2 == 0) {
      for (auto it = inner.begin(); it != inner.end(); ++it) {
        std::vector<digit> word{static_cast<digit>(v)};
        word.insert(word.end(), it->begin(), it->end());
        out.push_back(std::move(word));
      }
    } else {
      for (auto it = inner.rbegin(); it != inner.rend(); ++it) {
        std::vector<digit> word{static_cast<digit>(v)};
        word.insert(word.end(), it->begin(), it->end());
        out.push_back(std::move(word));
      }
    }
  }
}

}  // namespace

std::vector<code_word> gray_code_words(unsigned radix,
                                       std::size_t free_length) {
  NWDEC_EXPECTS(radix >= 2, "gray code radix must be at least 2");
  NWDEC_EXPECTS(free_length >= 1, "gray code needs at least one digit");
  std::vector<code_word> out;
  if (radix == 2) {
    // Binary path: gray_encode(i) read MSB-first is exactly the reflected
    // sequence the recursion below would build, without the recursion.
    NWDEC_EXPECTS(free_length < 64, "binary gray code length must fit 64 bits");
    const std::uint64_t count = std::uint64_t{1} << free_length;
    out.reserve(count);
    std::vector<digit> digits(free_length);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t gray = gray_encode(i);
      for (std::size_t bit = 0; bit < free_length; ++bit) {
        digits[bit] =
            static_cast<digit>((gray >> (free_length - 1 - bit)) & 1u);
      }
      out.emplace_back(radix, digits);
    }
    return out;
  }
  std::vector<std::vector<digit>> raw;
  build(radix, free_length, raw);
  out.reserve(raw.size());
  for (auto& digits : raw) out.emplace_back(radix, std::move(digits));
  return out;
}

bool is_gray_sequence(const std::vector<code_word>& words,
                      std::size_t per_step, bool cyclic) {
  if (words.size() < 2) return true;
  for (std::size_t i = 0; i + 1 < words.size(); ++i) {
    if (words[i].transitions_to(words[i + 1]) != per_step) return false;
  }
  if (cyclic && words.back().transitions_to(words.front()) != per_step) {
    return false;
  }
  return true;
}

}  // namespace nwdec::codes
