#include "codes/code_space.h"

#include <algorithm>

#include "util/error.h"

namespace nwdec::codes {

std::string code_type_name(code_type type) {
  switch (type) {
    case code_type::tree: return "TC";
    case code_type::gray: return "GC";
    case code_type::balanced_gray: return "BGC";
    case code_type::hot: return "HC";
    case code_type::arranged_hot: return "AHC";
  }
  throw logic_invariant_error("unhandled code_type");
}

code_type parse_code_type(const std::string& name) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::toupper(ch)); });
  if (upper == "TC") return code_type::tree;
  if (upper == "GC") return code_type::gray;
  if (upper == "BGC") return code_type::balanced_gray;
  if (upper == "HC") return code_type::hot;
  if (upper == "AHC") return code_type::arranged_hot;
  throw invalid_argument_error("unknown code type: " + name +
                               " (expected TC, GC, BGC, HC or AHC)");
}

std::vector<code_word> code::pattern_sequence(
    std::size_t nanowire_count) const {
  NWDEC_EXPECTS(!words.empty(), "pattern sequence of an empty code");
  std::vector<code_word> out;
  out.reserve(nanowire_count);
  for (std::size_t i = 0; i < nanowire_count; ++i) {
    out.push_back(words[i % words.size()]);
  }
  return out;
}

}  // namespace nwdec::codes
