// Closed-form indexing (rank/unrank) of the arranged code spaces.
//
// The experiment harnesses materialize whole code spaces, but a memory
// controller only ever needs "the address word of nanowire i" and "the
// position of this word in the patterning order". These run in O(M) or
// O(M * radix) time and O(1) space:
//   * tree codes: base-n positional arithmetic,
//   * Gray codes: the recursive reflected construction,
//   * binary hot codes in revolving-door order: the classic combinatorial
//     recurrence (Knuth 4A, Algorithm R companion identities),
//   * n-ary hot codes in lexicographic order: multiset-permutation
//     ranking by multinomial counting.
// Balanced Gray codes are produced by search and have no closed form;
// their indexing intentionally throws (use codes::make_code).
//
// All functions operate on *base* (unreflected) words; reflect with
// code_word::reflected() for the decoder's full-length form.
#pragma once

#include <cstddef>

#include "codes/word.h"

namespace nwdec::codes {

/// Position of `base_word` in counting order; inverse of tree_code_word.
std::size_t tree_rank(const code_word& base_word);

/// The index-th word of the n-ary reflected Gray code with `free_length`
/// digits; index < radix^free_length.
code_word gray_unrank(unsigned radix, std::size_t free_length,
                      std::size_t index);

/// Position of `base_word` in the n-ary reflected Gray order.
std::size_t gray_rank(const code_word& base_word);

/// The index-th constant-weight word (binary, `chosen` ones out of
/// `total` digits) in revolving-door order; matches
/// revolving_door_words(total, chosen)[index].
code_word revolving_door_unrank(std::size_t total, std::size_t chosen,
                                std::size_t index);

/// Position of a binary constant-weight word in revolving-door order.
std::size_t revolving_door_rank(const code_word& word);

/// The index-th (M, k) hot-code word over `radix` values in lexicographic
/// order; matches hot_code_words(radix, k)[index].
code_word hot_lex_unrank(unsigned radix, std::size_t k, std::size_t index);

/// Position of a hot-code word in lexicographic order.
std::size_t hot_lex_rank(const code_word& word);

/// Binomial coefficient C(n, k) in 64 bits; throws on overflow. Exposed
/// because the ranking recurrences and their tests share it.
std::size_t binomial(std::size_t n, std::size_t k);

}  // namespace nwdec::codes
