// The `code` value type: an ordered code space ready for decoder use.
//
// A code bundles the arranged sequence of (full-length, possibly reflected)
// code words with the metadata the rest of the library needs: the logic
// radix n, the full word length M, and the code family it came from. The
// order of `words` is significant — it is the order in which nanowires are
// patterned inside a half cave, which is exactly what the Gray-code
// optimization of the paper is about.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "codes/word.h"

namespace nwdec::codes {

/// The code families studied in the paper (Sec. 2.3 and 5).
enum class code_type {
  tree,           ///< n-ary counting code, reflected (TC)
  gray,           ///< n-ary reflected Gray arrangement of the tree space (GC)
  balanced_gray,  ///< Gray code with balanced per-digit transitions (BGC)
  hot,            ///< (M,k) hot code in lexicographic order (HC)
  arranged_hot,   ///< hot code arranged Gray-fashion, 2 transitions/step (AHC)
};

/// Short display name, e.g. "GC".
std::string code_type_name(code_type type);

/// Parses "TC"/"GC"/"BGC"/"HC"/"AHC" (case-insensitive).
code_type parse_code_type(const std::string& name);

/// An ordered code space; produced by codes::make_code (factory.h).
struct code {
  code_type type = code_type::tree;
  unsigned radix = 2;       ///< logic values n
  std::size_t length = 0;   ///< full word length M (reflection included)
  bool reflected = false;   ///< true for tree-family codes
  std::vector<code_word> words;  ///< arranged full-length words

  /// Code space size Omega.
  std::size_t size() const { return words.size(); }

  /// The pattern sequence for N nanowires: nanowire i receives word
  /// (i mod Omega). A half cave holding more nanowires than the code space
  /// reuses the space cyclically, one full period per contact group.
  std::vector<code_word> pattern_sequence(std::size_t nanowire_count) const;
};

}  // namespace nwdec::codes
