// Hot codes (HC): the (M, k) multiset codes of Sec. 2.3.
//
// A hot code over radix n with parameters (M, k), M = k*n, contains every
// length-M word in which each of the n values appears exactly k times. Hot
// codes have constant digit sum, so no word can componentwise cover
// another: they are antichains and uniquely addressable *without*
// reflection. For n = 2 they are the classic constant-weight ("k-hot")
// address codes.
#pragma once

#include <cstddef>
#include <vector>

#include "codes/word.h"

namespace nwdec::codes {

/// All (M, k) hot-code words over `radix` values in lexicographic order,
/// where M = k * radix. Requires k >= 1 and a space size small enough to
/// enumerate (the experiments stay below ~10^4 words).
std::vector<code_word> hot_code_words(unsigned radix, std::size_t k);

/// True when each of the radix values appears exactly k times in `word`.
bool is_hot_word(const code_word& word, std::size_t k);

/// Space size M! / (k!)^n, computed exactly in 64-bit; throws when it
/// would overflow.
std::size_t hot_code_space_size(unsigned radix, std::size_t k);

}  // namespace nwdec::codes
