// Gray codes (GC): the transition-minimal arrangement of the tree space.
//
// The n-ary reflected Gray code enumerates all n^m words so that successive
// words differ in exactly one digit (and the change is +-1). Propositions 4
// and 5 of the paper show this arrangement minimizes both the decoder
// variability ||Sigma||_1 and the fabrication complexity Phi among all
// arrangements of the tree space.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "codes/word.h"

namespace nwdec::codes {

/// Index -> binary reflected Gray codeword, shift-xor form: bit-twiddled
/// equivalent of walking the radix-2 reflected construction. gray_encode(i)
/// read MSB-first over m bits is the i-th word of gray_code_words(2, m).
constexpr std::uint64_t gray_encode(std::uint64_t index) {
  return index ^ (index >> 1);
}

/// Inverse of gray_encode: recovers the rank of a binary Gray codeword by
/// folding the running xor down with halving shifts (O(log bits)).
constexpr std::uint64_t gray_decode(std::uint64_t gray) {
  gray ^= gray >> 32;
  gray ^= gray >> 16;
  gray ^= gray >> 8;
  gray ^= gray >> 4;
  gray ^= gray >> 2;
  gray ^= gray >> 1;
  return gray;
}

/// All n^free_length words in n-ary reflected Gray order. Successive words
/// (including none across the wrap for odd radix; for even radix the wrap
/// is also a single-digit change) differ in exactly one digit.
std::vector<code_word> gray_code_words(unsigned radix,
                                       std::size_t free_length);

/// True when every adjacent pair of `words` differs in exactly
/// `per_step` digits; `cyclic` additionally checks the wrap-around pair.
bool is_gray_sequence(const std::vector<code_word>& words,
                      std::size_t per_step, bool cyclic);

}  // namespace nwdec::codes
