// Arranged hot codes (AHC, Sec. 5.2): hot codes reordered "in a Gray-code
// fashion" so that every pair of successive words differs in exactly two
// digits -- the minimum possible, since hot-code words have fixed value
// counts and therefore cannot differ in a single digit.
//
// For binary hot codes the arrangement is produced constructively by the
// revolving-door combination Gray code (Nijenhuis & Wilf), which walks all
// C(M, k) constant-weight words swapping one 1 with one 0 per step and is
// cyclic. For higher radices we reproduce the paper's approach: an
// exhaustive Hamiltonian-path search over the 2-transition graph (the paper
// reports such an arrangement "always exists" for spaces up to ~100 words),
// falling back to greedy + 2-opt beyond the exact-search budget.
#pragma once

#include <cstddef>
#include <vector>

#include "codes/word.h"

namespace nwdec::codes {

/// All C(total, chosen) binary constant-weight words in revolving-door
/// order: successive words (cyclically) differ by exactly one 0<->1 swap.
/// Digit j of each word is 1 when element j is in the combination.
std::vector<code_word> revolving_door_words(std::size_t total,
                                            std::size_t chosen);

/// The arranged (M, k) hot code over `radix` values: the full hot-code
/// space ordered so successive words differ in exactly two digits whenever
/// such an ordering is found (always, for the sizes in the paper). The
/// returned sequence is a permutation of hot_code_words(radix, k).
std::vector<code_word> arranged_hot_code_words(unsigned radix, std::size_t k);

}  // namespace nwdec::codes
