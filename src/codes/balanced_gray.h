// Balanced Gray codes (BGC).
//
// A balanced Gray code is a cyclic Gray code whose per-digit transition
// counts are as equal as possible (Bhat & Savage, Electron. J. Comb. 1996).
// The paper uses BGCs to spread the decoder variability evenly across the
// doping regions (Fig. 6) instead of concentrating it in the fast-toggling
// low-order digits of the standard Gray code.
//
// Construction: we search for a Hamiltonian cycle of the n-ary Hamming
// graph under per-digit transition budgets, starting from the perfectly
// balanced budget and relaxing it step by step (with two move-ordering
// heuristics and deterministic restarts). Every configuration the
// experiments use (binary up to 6 free digits, ternary up to 4,
// quaternary up to 4) balances with spread <= 2 within seconds; spaces
// beyond the search's reach (binary >= 7 free digits, ternary >= 5)
// throw instead of silently degrading -- use the plain Gray code there.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "codes/word.h"

namespace nwdec::codes {

/// All radix^free_length words arranged as a balanced cyclic Gray code:
/// successive words (wrap included) differ in exactly one digit, and the
/// per-digit transition counts over the full cycle differ by at most 2
/// (for the feasible sizes; see header comment).
std::vector<code_word> balanced_gray_code_words(unsigned radix,
                                                std::size_t free_length);

/// The ideal per-digit transition budget for a cyclic Gray code over the
/// full space: counts sum to radix^free_length, are even when radix == 2
/// (a binary cyclic Gray code toggles each bit an even number of times),
/// and are within 2 of each other. Exposed for tests.
std::vector<std::size_t> balanced_transition_targets(unsigned radix,
                                                     std::size_t free_length);

/// The BGC constraint exactly as Sec. 2.3 states it: a Gray sequence of
/// `count` distinct words in which every digit changes at most
/// `max_changes` times. Feasible only while count - 1 <= max_changes *
/// free_length (each step consumes one change), so it describes short
/// *prefixes* rather than full code spaces; the full-space BGC above is
/// the balanced-counts generalization the experiments use. Returns
/// nullopt when no such sequence exists.
std::optional<std::vector<code_word>> constrained_gray_prefix(
    unsigned radix, std::size_t free_length, std::size_t count,
    std::size_t max_changes);

}  // namespace nwdec::codes
