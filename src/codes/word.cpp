#include "codes/word.h"

#include <algorithm>
#include <numeric>

namespace nwdec::codes {

code_word::code_word(unsigned radix, std::size_t length)
    : radix_(radix), digits_(length, 0) {
  NWDEC_EXPECTS(radix >= 2, "a code word needs at least two logic values");
}

code_word::code_word(unsigned radix, std::vector<digit> digits)
    : radix_(radix), digits_(std::move(digits)) {
  NWDEC_EXPECTS(radix >= 2, "a code word needs at least two logic values");
  for (const digit d : digits_) {
    NWDEC_EXPECTS(d < radix_, "digit value exceeds radix");
  }
}

digit code_word::at(std::size_t pos) const {
  NWDEC_EXPECTS(pos < digits_.size(), "digit index out of range");
  return digits_[pos];
}

void code_word::set(std::size_t pos, digit value) {
  NWDEC_EXPECTS(pos < digits_.size(), "digit index out of range");
  NWDEC_EXPECTS(value < radix_, "digit value exceeds radix");
  digits_[pos] = value;
}

std::size_t code_word::transitions_to(const code_word& other) const {
  NWDEC_EXPECTS(radix_ == other.radix_ && length() == other.length(),
                "transition count requires words of equal shape");
  std::size_t count = 0;
  for (std::size_t i = 0; i < digits_.size(); ++i) {
    if (digits_[i] != other.digits_[i]) ++count;
  }
  return count;
}

code_word code_word::complement() const {
  std::vector<digit> out(digits_.size());
  const digit top = static_cast<digit>(radix_ - 1);
  for (std::size_t i = 0; i < digits_.size(); ++i) {
    out[i] = static_cast<digit>(top - digits_[i]);
  }
  return code_word(radix_, std::move(out));
}

code_word code_word::reflected() const {
  std::vector<digit> out = digits_;
  const code_word comp = complement();
  out.insert(out.end(), comp.digits_.begin(), comp.digits_.end());
  return code_word(radix_, std::move(out));
}

bool code_word::componentwise_le(const code_word& other) const {
  NWDEC_EXPECTS(radix_ == other.radix_ && length() == other.length(),
                "cover relation requires words of equal shape");
  for (std::size_t i = 0; i < digits_.size(); ++i) {
    if (digits_[i] > other.digits_[i]) return false;
  }
  return true;
}

std::vector<std::size_t> code_word::value_counts() const {
  std::vector<std::size_t> counts(radix_, 0);
  for (const digit d : digits_) ++counts[d];
  return counts;
}

std::size_t code_word::digit_sum() const {
  return std::accumulate(digits_.begin(), digits_.end(), std::size_t{0});
}

std::string code_word::to_string() const {
  std::string out;
  for (const digit d : digits_) {
    if (d < 10) {
      out += static_cast<char>('0' + d);
    } else {
      out += '[';
      out += std::to_string(static_cast<unsigned>(d));
      out += ']';
    }
  }
  return out;
}

code_word parse_word(unsigned radix, const std::string& text) {
  std::vector<digit> digits;
  digits.reserve(text.size());
  for (const char ch : text) {
    NWDEC_EXPECTS(ch >= '0' && ch <= '9', "parse_word accepts digits 0-9");
    digits.push_back(static_cast<digit>(ch - '0'));
  }
  return code_word(radix, std::move(digits));
}

}  // namespace nwdec::codes
