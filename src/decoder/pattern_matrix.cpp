#include "decoder/pattern_matrix.h"

#include "util/error.h"

namespace nwdec::decoder {

matrix<codes::digit> pattern_matrix(const codes::code& code,
                                    std::size_t nanowire_count) {
  NWDEC_EXPECTS(nanowire_count >= 1, "a half cave holds at least 1 nanowire");
  return pattern_matrix(code.pattern_sequence(nanowire_count));
}

matrix<codes::digit> pattern_matrix(
    const std::vector<codes::code_word>& sequence) {
  NWDEC_EXPECTS(!sequence.empty(), "pattern matrix needs at least one row");
  const std::size_t regions = sequence.front().length();
  const unsigned radix = sequence.front().radix();
  matrix<codes::digit> pattern(sequence.size(), regions);
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    NWDEC_EXPECTS(sequence[i].length() == regions &&
                      sequence[i].radix() == radix,
                  "all pattern rows must share radix and length");
    for (std::size_t j = 0; j < regions; ++j) {
      pattern(i, j) = sequence[i].at(j);
    }
  }
  return pattern;
}

codes::code_word pattern_row(const matrix<codes::digit>& pattern,
                             unsigned radix, std::size_t row) {
  return codes::code_word(radix, pattern.row(row));
}

}  // namespace nwdec::decoder
