// AVX-512 instantiation of the blocked margin kernels: compiled with
// -mavx512f -mavx512bw when the compiler supports them, a stub otherwise.
#include "decoder/addressing_kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__)
#define NWDEC_ADDR_KERNEL_PATH_NAME "avx512"
#define NWDEC_ADDR_KERNEL_TABLE_FN avx512_kernel_table
#include "decoder/addressing_kernels_body.inc"
#else
namespace nwdec::decoder::detail {
const kernel_table* avx512_kernel_table() { return nullptr; }
}  // namespace nwdec::decoder::detail
#endif
