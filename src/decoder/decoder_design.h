// decoder_design: the facade tying a code choice to every matrix and cost
// function of the paper for one half cave.
//
// Construction runs the full analytical pipeline once:
//   code + N  ->  P  ->  D = h(P)  ->  S  ->  { Phi, nu, Sigma }
// and keeps the intermediate matrices available for inspection, testing,
// the process simulator (which consumes S) and the yield analysis (which
// consumes nu).
#pragma once

#include <cstddef>

#include "codes/code_space.h"
#include "device/doping_map.h"
#include "device/tech_params.h"
#include "device/vt_levels.h"
#include "util/matrix.h"

namespace nwdec::decoder {

/// Immutable analysis of one half-cave decoder.
class decoder_design {
 public:
  /// Analyzes `nanowires` nanowires patterned with the arranged `code`
  /// under technology `tech`. The dose table is derived from the device
  /// model; pass a custom table with the other constructor to reproduce
  /// the paper's worked examples.
  decoder_design(codes::code code, std::size_t nanowires,
                 const device::technology& tech);

  /// Same, but with an explicit digit->doping table (cm^-3, strictly
  /// increasing); the table length must be >= the code radix.
  decoder_design(codes::code code, std::size_t nanowires,
                 const device::technology& tech, device::dose_table doses);

  /// The arranged code in use.
  const codes::code& code() const { return code_; }
  /// N: nanowires per half cave.
  std::size_t nanowire_count() const { return pattern_.rows(); }
  /// M: doping regions per nanowire (full code length).
  std::size_t region_count() const { return pattern_.cols(); }
  /// The technology the analysis ran under.
  const device::technology& tech() const { return tech_; }
  /// Nominal V_T levels.
  const device::vt_levels& levels() const { return levels_; }
  /// Digit -> doping table (h restricted to digit values).
  const device::dose_table& doses() const { return doses_; }

  /// Pattern matrix P (Definition 1).
  const matrix<codes::digit>& pattern() const { return pattern_; }
  /// Final doping matrix D (Definition 2).
  const matrix<double>& final_doping() const { return final_doping_; }
  /// Step doping matrix S (Definition 3).
  const matrix<double>& step_doping() const { return step_doping_; }
  /// Dose-count matrix nu (Definition 5).
  const matrix<std::size_t>& dose_counts() const { return dose_counts_; }

  /// Phi: total extra lithography/doping steps (Definition 4).
  std::size_t fabrication_complexity() const { return complexity_; }
  /// Sigma in V^2.
  matrix<double> variability() const;
  /// sqrt(Sigma) in volts, per region; input to the yield model.
  matrix<double> region_stddev() const;
  /// ||Sigma||_1 in units of sigma_T^2 (i.e. sum of nu).
  std::size_t variability_norm_sigma_units() const;
  /// ||Sigma||_1 / (N*M) in units of sigma_T^2.
  double average_variability_sigma_units() const;

 private:
  codes::code code_;
  device::technology tech_;
  device::vt_levels levels_;
  device::dose_table doses_;
  matrix<codes::digit> pattern_;
  matrix<double> final_doping_;
  matrix<double> step_doping_;
  matrix<std::size_t> dose_counts_;
  std::size_t complexity_;
};

}  // namespace nwdec::decoder
