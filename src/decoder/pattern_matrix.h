// The pattern matrix P (Definition 1): one row per nanowire in a half
// cave, one column per doping region, entries in {0, ..., n-1} naming the
// nominal V_T level of that region.
//
// Row i is the code word assigned to nanowire i in *definition order*: row
// 0 is the first spacer the MSPT flow defines (and therefore the one that
// accumulates every subsequent doping dose), row N-1 the last. When the
// half cave holds more nanowires than the code space, the arranged code
// repeats cyclically (one period per contact group).
#pragma once

#include <cstddef>

#include "codes/code_space.h"
#include "util/matrix.h"

namespace nwdec::decoder {

/// Builds P for `nanowire_count` nanowires from the arranged code.
matrix<codes::digit> pattern_matrix(const codes::code& code,
                                    std::size_t nanowire_count);

/// Builds P from an explicit word sequence (row i = sequence[i]); all
/// words must share radix and length. Used by tests and the arrangement
/// optimality studies.
matrix<codes::digit> pattern_matrix(
    const std::vector<codes::code_word>& sequence);

/// Extracts row `i` of a pattern matrix back into a code word.
codes::code_word pattern_row(const matrix<codes::digit>& pattern,
                             unsigned radix, std::size_t row);

}  // namespace nwdec::decoder
