#include "decoder/margins.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace nwdec::decoder {

std::size_t margin_analysis::regions_below(double threshold) const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < sigma_margins.rows(); ++i) {
    for (std::size_t j = 0; j < sigma_margins.cols(); ++j) {
      if (sigma_margins(i, j) < threshold) ++count;
    }
  }
  return count;
}

margin_analysis analyze_margins(const decoder_design& design) {
  NWDEC_EXPECTS(design.tech().sigma_vt > 0.0,
                "margins are defined for a noisy process (sigma_vt > 0)");
  const double window = design.levels().window_half_width();
  const double sigma_vt = design.tech().sigma_vt;

  margin_analysis analysis;
  analysis.sigma_margins =
      matrix<double>(design.nanowire_count(), design.region_count());
  analysis.per_nanowire_worst.assign(design.nanowire_count(),
                                     std::numeric_limits<double>::infinity());
  analysis.worst_margin = std::numeric_limits<double>::infinity();

  double sum = 0.0;
  for (std::size_t i = 0; i < design.nanowire_count(); ++i) {
    for (std::size_t j = 0; j < design.region_count(); ++j) {
      const double sigma =
          sigma_vt *
          std::sqrt(static_cast<double>(design.dose_counts()(i, j)));
      const double margin = window / sigma;
      analysis.sigma_margins(i, j) = margin;
      sum += margin;
      if (margin < analysis.per_nanowire_worst[i]) {
        analysis.per_nanowire_worst[i] = margin;
      }
      if (margin < analysis.worst_margin) {
        analysis.worst_margin = margin;
        analysis.critical_nanowire = i;
        analysis.critical_region = j;
      }
    }
  }
  analysis.mean_margin =
      sum / static_cast<double>(analysis.sigma_margins.size());
  return analysis;
}

}  // namespace nwdec::decoder
