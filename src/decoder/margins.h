// Noise-margin analysis of a decoder design.
//
// Region (i, j) tolerates |V_T - nominal| up to the addressability window;
// its V_T spread is sigma_T * sqrt(nu[i][j]). The ratio
//
//     margin[i][j] = window / (sigma_T * sqrt(nu[i][j]))
//
// is the region's guard band measured in standard deviations ("sigma
// margin"), the quantity designers actually review: anything below ~2
// sigma is a likely field failure. The analysis identifies the critical
// region, summarizes the distribution, and shows where each code family
// concentrates its risk (the tree code's fast-toggling digits, spread
// evenly by the balanced Gray code).
#pragma once

#include <cstddef>
#include <vector>

#include "decoder/decoder_design.h"
#include "util/matrix.h"

namespace nwdec::decoder {

/// Sigma-margin analysis of one half cave.
struct margin_analysis {
  matrix<double> sigma_margins;        ///< window / (sigma_T sqrt(nu))
  double worst_margin = 0.0;           ///< min over all regions
  std::size_t critical_nanowire = 0;   ///< argmin row
  std::size_t critical_region = 0;     ///< argmin column
  std::vector<double> per_nanowire_worst;  ///< min margin per nanowire
  double mean_margin = 0.0;

  /// Count of regions with a margin below `threshold` sigmas.
  std::size_t regions_below(double threshold) const;
};

/// Runs the analysis; sigma_vt must be positive (margins are infinite in
/// a noiseless process).
margin_analysis analyze_margins(const decoder_design& design);

}  // namespace nwdec::decoder
