#include "decoder/optimality.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>

#include "codes/factory.h"
#include "decoder/complexity.h"
#include "decoder/doping_profile.h"
#include "decoder/pattern_matrix.h"
#include "decoder/variability.h"
#include "device/doping_map.h"
#include "util/error.h"

namespace nwdec::decoder {

namespace {

arrangement_costs evaluate_with_doses(
    const std::vector<codes::code_word>& sequence, std::size_t nanowires,
    const device::dose_table& doses) {
  std::vector<codes::code_word> rows;
  rows.reserve(nanowires);
  for (std::size_t i = 0; i < nanowires; ++i) {
    rows.push_back(sequence[i % sequence.size()]);
  }
  const matrix<codes::digit> pattern = pattern_matrix(rows);
  const matrix<double> final = final_doping(pattern, doses);
  const matrix<double> step = step_doping(final);

  arrangement_costs costs;
  costs.fabrication_complexity = fabrication_complexity(step);
  costs.variability_sigma_units =
      variability_norm_sigma_units(dose_count_matrix(step));
  return costs;
}

}  // namespace

arrangement_costs evaluate_arrangement(
    const std::vector<codes::code_word>& sequence, std::size_t nanowires,
    const device::technology& tech) {
  NWDEC_EXPECTS(!sequence.empty(), "cannot evaluate an empty arrangement");
  const device::dose_table doses =
      device::physical_dose_table(sequence.front().radix(), tech);
  return evaluate_with_doses(sequence, nanowires, doses);
}

namespace {

optimality_report compare_with_generator(
    const std::vector<codes::code_word>& base_words, bool reflect,
    const std::vector<codes::code_word>& reference_sequence,
    std::size_t nanowires, const device::technology& tech,
    const std::function<bool(std::vector<std::size_t>&)>& next_permutation) {
  NWDEC_EXPECTS(!base_words.empty(), "need at least one base word");
  const device::dose_table doses =
      device::physical_dose_table(base_words.front().radix(), tech);
  optimality_report report;
  report.reference =
      evaluate_with_doses(reference_sequence, nanowires, doses);
  report.best_other.fabrication_complexity = SIZE_MAX;
  report.best_other.variability_sigma_units = SIZE_MAX;
  report.best_other_phi_same_last = SIZE_MAX;

  // The last *patterned* row is row (nanowires-1) of the cyclic sequence;
  // its word determines the arrangement-independent part of phi_{N-1}.
  const codes::code_word& reference_last =
      reference_sequence[(nanowires - 1) % reference_sequence.size()];

  std::vector<std::size_t> order(base_words.size());
  std::iota(order.begin(), order.end(), 0);
  do {
    std::vector<codes::code_word> sequence;
    sequence.reserve(base_words.size());
    for (const std::size_t idx : order) sequence.push_back(base_words[idx]);
    if (reflect) sequence = codes::reflect_words(sequence);

    const arrangement_costs costs =
        evaluate_with_doses(sequence, nanowires, doses);
    report.best_other.fabrication_complexity =
        std::min(report.best_other.fabrication_complexity,
                 costs.fabrication_complexity);
    report.best_other.variability_sigma_units =
        std::min(report.best_other.variability_sigma_units,
                 costs.variability_sigma_units);
    if (sequence[(nanowires - 1) % sequence.size()] == reference_last) {
      report.best_other_phi_same_last = std::min(
          report.best_other_phi_same_last, costs.fabrication_complexity);
    }
    ++report.arrangements_tested;
  } while (next_permutation(order));

  report.reference_minimizes_phi =
      report.reference.fabrication_complexity <=
      report.best_other_phi_same_last;
  report.reference_minimizes_phi_globally =
      report.reference.fabrication_complexity <=
      report.best_other.fabrication_complexity;
  report.reference_minimizes_sigma =
      report.reference.variability_sigma_units <=
      report.best_other.variability_sigma_units;
  return report;
}

}  // namespace

optimality_report compare_exhaustive(
    const std::vector<codes::code_word>& base_words, bool reflect,
    const std::vector<codes::code_word>& reference_sequence,
    std::size_t nanowires, const device::technology& tech) {
  NWDEC_EXPECTS(base_words.size() <= 8,
                "exhaustive comparison limited to 8 base words (8! orders)");
  return compare_with_generator(
      base_words, reflect, reference_sequence, nanowires, tech,
      [](std::vector<std::size_t>& order) {
        return std::next_permutation(order.begin(), order.end());
      });
}

optimality_report compare_sampled(
    const std::vector<codes::code_word>& base_words, bool reflect,
    const std::vector<codes::code_word>& reference_sequence,
    std::size_t nanowires, const device::technology& tech,
    std::size_t samples, rng& random) {
  NWDEC_EXPECTS(samples >= 1, "need at least one sample");
  std::size_t remaining = samples;
  return compare_with_generator(
      base_words, reflect, reference_sequence, nanowires, tech,
      [&remaining, &random](std::vector<std::size_t>& order) {
        if (remaining-- <= 1) return false;
        std::shuffle(order.begin(), order.end(), random.engine());
        return true;
      });
}

}  // namespace nwdec::decoder
