// Decoder conduction logic and address tables (Sec. 2.2, Fig. 1.c).
//
// Every doping region is a transistor in series along the nanowire; the
// region conducts when its gate (mesowire) voltage exceeds its threshold
// voltage, and the nanowire conducts when all M regions conduct. To address
// the nanowire patterned with word w, each mesowire j is driven just above
// the w_j-th level (vt_levels::drive_voltage), so a nanowire with pattern x
// conducts iff x <= w componentwise. Unique addressing therefore holds
// exactly when the code is an antichain -- which reflected tree-family
// codes and hot codes are.
//
// Two conduction entry points are provided: the nominal digit-level rule
// (used for address-table construction and code validation), and the
// voltage-level rule on *realized* V_T matrices (used by the Monte-Carlo
// yield simulator, where process variability has displaced every V_T).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "codes/code_space.h"
#include "codes/word.h"
#include "device/vt_levels.h"
#include "util/matrix.h"

namespace nwdec::decoder {

/// Nominal rule: pattern x conducts under the address of w iff x <= w
/// componentwise (every region's level is at or below the driven level).
bool conducts(const codes::code_word& pattern, const codes::code_word& address);

/// Voltage rule: a nanowire with realized thresholds `realized_vt` (volts,
/// one entry per region) conducts under `gate_voltages` iff every region
/// satisfies gate > threshold.
bool conducts(const std::vector<double>& realized_vt,
              const std::vector<double>& gate_voltages);

/// Span form of the voltage rule for flat buffers (a realized-Vt matrix row
/// against a precomputed drive-table row). Unchecked: the caller guarantees
/// both spans hold `regions` entries. The Monte-Carlo yield engine's
/// allocation-free inner loop (trial_context::operational_ok) calls this.
inline bool conducts(const double* realized_vt, const double* gate_voltages,
                     std::size_t regions) {
  for (std::size_t j = 0; j < regions; ++j) {
    if (gate_voltages[j] <= realized_vt[j]) return false;
  }
  return true;
}

/// Mesowire voltages driving the address of word w.
std::vector<double> drive_pattern(const codes::code_word& w,
                                  const device::vt_levels& levels);

/// Buffer-reuse form of drive_pattern: writes the w.length() drive voltages
/// into `out` (resized as needed, reusing capacity).
void drive_pattern_into(const codes::code_word& w,
                        const device::vt_levels& levels,
                        std::vector<double>& out);

/// Indices of the pattern rows that conduct under the address of `address`
/// (nominal rule).
std::vector<std::size_t> addressed_rows(const matrix<codes::digit>& pattern,
                                        unsigned radix,
                                        const codes::code_word& address);

/// True when every word in `words` addresses exactly one word of the set
/// (itself) under the nominal rule -- the operational definition of unique
/// addressability the antichain property guarantees.
bool uniquely_addressable(const std::vector<codes::code_word>& words);

/// Address lookup table for one contact group: maps each code word to the
/// in-group nanowire index it selects, and exposes the inverse.
class address_table {
 public:
  /// Builds the table for a group whose nanowires are patterned with
  /// `words` (all distinct); verifies unique addressability.
  explicit address_table(std::vector<codes::code_word> words);

  /// Number of addressable nanowires.
  std::size_t size() const { return words_.size(); }

  /// The address (code word) selecting in-group nanowire `index`.
  const codes::code_word& address_of(std::size_t index) const;

  /// The in-group nanowire index selected by `address`, or nullopt when the
  /// address matches no nanowire -- or more than one (an over-driving word
  /// like the all-high address makes several nanowires conduct and selects
  /// nothing usable).
  std::optional<std::size_t> select(const codes::code_word& address) const;

 private:
  std::vector<codes::code_word> words_;
};

}  // namespace nwdec::decoder
