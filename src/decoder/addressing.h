// Decoder conduction logic and address tables (Sec. 2.2, Fig. 1.c).
//
// Every doping region is a transistor in series along the nanowire; the
// region conducts when its gate (mesowire) voltage exceeds its threshold
// voltage, and the nanowire conducts when all M regions conduct. To address
// the nanowire patterned with word w, each mesowire j is driven just above
// the w_j-th level (vt_levels::drive_voltage), so a nanowire with pattern x
// conducts iff x <= w componentwise. Unique addressing therefore holds
// exactly when the code is an antichain -- which reflected tree-family
// codes and hot codes are.
//
// Two conduction entry points are provided: the nominal digit-level rule
// (used for address-table construction and code validation), and the
// voltage-level rule on *realized* V_T matrices (used by the Monte-Carlo
// yield simulator, where process variability has displaced every V_T).
//
// The blocked kernels (conducts_block, addressable_block,
// addressable_group_block, window_margin_block) are runtime-SIMD-
// dispatched: one binary carries scalar / SSE2 / AVX2 / AVX-512
// instantiations and util/cpu picks the widest one the running CPU
// supports (NWDEC_SIMD_PATH overrides; see util/cpu.h). Every path
// performs the same IEEE operations per lane, so the chosen path never
// changes a result, only throughput.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "codes/code_space.h"
#include "codes/word.h"
#include "device/vt_levels.h"
#include "util/matrix.h"

namespace nwdec::decoder {

/// Nominal rule: pattern x conducts under the address of w iff x <= w
/// componentwise (every region's level is at or below the driven level).
bool conducts(const codes::code_word& pattern, const codes::code_word& address);

/// Voltage rule: a nanowire with realized thresholds `realized_vt` (volts,
/// one entry per region) conducts under `gate_voltages` iff every region
/// satisfies gate > threshold.
bool conducts(const std::vector<double>& realized_vt,
              const std::vector<double>& gate_voltages);

/// Span form of the voltage rule for flat buffers (a realized-Vt matrix row
/// against a precomputed drive-table row). Unchecked: the caller guarantees
/// both spans hold `regions` entries. The Monte-Carlo yield engine's
/// allocation-free inner loop (trial_context::operational_ok) calls this.
inline bool conducts(const double* realized_vt, const double* gate_voltages,
                     std::size_t regions) {
  for (std::size_t j = 0; j < regions; ++j) {
    if (gate_voltages[j] <= realized_vt[j]) return false;
  }
  return true;
}

/// Blocked voltage rule: one drive row evaluated against `lanes` realized
/// rows at once. The realized thresholds are a structure-of-arrays slab --
/// region j of lane t lives at realized_lanes[j * lane_stride + t] -- so
/// the lane body is a contiguous branch-free sweep the compiler can
/// vectorize. Lane t conducts iff gate[j] > vt for every region; the kernel
/// computes the conduction margin min_j (gate[j] - vt) per lane (exactly
/// equivalent: for finite doubles a > b iff a - b > 0, a nonzero
/// difference of doubles never rounds to zero). Writes
/// conducts_out[t] = 1 / 0 and returns true when any lane conducts.
/// Requires regions >= 1 and lanes >= 1.
bool conducts_block(const double* gate_voltages, const double* realized_lanes,
                    std::size_t lane_stride, std::size_t regions,
                    std::size_t lanes, std::uint8_t* conducts_out);

/// Whole-contact-group blocked kernel: addressable_out[t] becomes 1.0 when,
/// in lane t, nanowire `self` conducts under `gate_voltages` while every
/// other listed group member blocks (the operational criterion for one
/// address), else 0.0 -- a multiplication-ready lane mask. The slab holds
/// every nanowire's lanes: region j of nanowire r at
/// vt_lanes[(r * regions + j) * lane_stride + t]. `members` may include
/// `self` (it is skipped). Early-exit mask at the self boundary: when the
/// addressed nanowire blocks in every lane the whole member scan is
/// skipped -- the one reduction that reliably pays, since at high sigma
/// entire blocks die there. Member sweeps run straight-line: an all-lanes
/// exit almost never fires across a whole block mid-scan and its
/// reduction would cost more than it saves.
/// `margin_scratch` must hold 2 * lanes doubles. Returns true when any lane
/// stays addressable. Requires regions >= 1 and lanes >= 1.
bool addressable_block(const double* gate_voltages, const double* vt_lanes,
                       std::size_t lane_stride, std::size_t regions,
                       std::size_t lanes, std::size_t self,
                       const std::size_t* members, std::size_t member_count,
                       double* margin_scratch, double* addressable_out);

/// Whole-contact-group kernel: lane verdicts for every member of one
/// contact group in a single pass. Member k (nanowire row members[k]) is
/// addressable in lane t iff it conducts under its own address while every
/// other member blocks; out[k * out_stride + t] receives the 1.0 / 0.0
/// lane mask. Drive row of nanowire r starts at drive_table + r * regions;
/// the V_T slab is laid out as in addressable_block. Equivalent to one
/// addressable_block call per member, but the member-major sweep order
/// keeps each member's lane rows cache-hot while every drive row of the
/// group crosses them, so the slab is read ~twice per row instead of once
/// per (member, impostor) pair -- the difference between an L1- and an
/// L2-bound kernel at realistic group sizes. Members whose self margin is
/// already dead in every lane are skipped as addressees (early-exit mask);
/// they still sweep as impostors, exactly like the scalar path.
/// `margin_scratch` must hold (member_count + 1) * lanes doubles.
void addressable_group_block(const double* drive_table,
                             const double* vt_lanes, std::size_t lane_stride,
                             std::size_t regions, std::size_t lanes,
                             const std::size_t* members,
                             std::size_t member_count, double* margin_scratch,
                             double* out, std::size_t out_stride);

/// Blocked window-criterion kernel (the Monte-Carlo engine's mc_mode::
/// window): out[t] = 1.0 when lane t's realized V_T sits inside the
/// assignment window of every region, else 0.0. One nanowire's lane rows:
/// region j of lane t at vt_lanes_row[j * lane_stride + t]; `nominal` and
/// `low_guard` hold the nanowire's M window centers and lower guards
/// (-window_half_width, or -infinity where digit 0 exempts the lower
/// bound). Same running-min margin shape as the conduction kernels, and
/// dispatched through the same per-ISA tables. `margin` must hold `lanes`
/// doubles. Returns true when any lane passes. Requires regions >= 1 and
/// lanes >= 1.
bool window_margin_block(const double* vt_lanes_row, std::size_t lane_stride,
                         std::size_t lanes, const double* nominal,
                         const double* low_guard, double window_half_width,
                         std::size_t regions, double* margin, double* out);

/// Mesowire voltages driving the address of word w.
std::vector<double> drive_pattern(const codes::code_word& w,
                                  const device::vt_levels& levels);

/// Buffer-reuse form of drive_pattern: writes the w.length() drive voltages
/// into `out` (resized as needed, reusing capacity).
void drive_pattern_into(const codes::code_word& w,
                        const device::vt_levels& levels,
                        std::vector<double>& out);

/// Indices of the pattern rows that conduct under the address of `address`
/// (nominal rule).
std::vector<std::size_t> addressed_rows(const matrix<codes::digit>& pattern,
                                        unsigned radix,
                                        const codes::code_word& address);

/// True when every word in `words` addresses exactly one word of the set
/// (itself) under the nominal rule -- the operational definition of unique
/// addressability the antichain property guarantees.
bool uniquely_addressable(const std::vector<codes::code_word>& words);

/// Address lookup table for one contact group: maps each code word to the
/// in-group nanowire index it selects, and exposes the inverse.
class address_table {
 public:
  /// Builds the table for a group whose nanowires are patterned with
  /// `words` (all distinct); verifies unique addressability.
  explicit address_table(std::vector<codes::code_word> words);

  /// Number of addressable nanowires.
  std::size_t size() const { return words_.size(); }

  /// The address (code word) selecting in-group nanowire `index`.
  const codes::code_word& address_of(std::size_t index) const;

  /// The in-group nanowire index selected by `address`, or nullopt when the
  /// address matches no nanowire -- or more than one (an over-driving word
  /// like the all-high address makes several nanowires conduct and selects
  /// nothing usable).
  std::optional<std::size_t> select(const codes::code_word& address) const;

 private:
  std::vector<codes::code_word> words_;
};

}  // namespace nwdec::decoder
