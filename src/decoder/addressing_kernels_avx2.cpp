// AVX2 instantiation of the blocked margin kernels: compiled with -mavx2
// when the compiler supports it (CMake adds the flag per-file), a stub
// otherwise. Only the kernels behind the table pointers execute AVX2
// instructions; the getter itself must stay runnable on any CPU.
#include "decoder/addressing_kernels.h"

#if defined(__AVX2__)
#define NWDEC_ADDR_KERNEL_PATH_NAME "avx2"
#define NWDEC_ADDR_KERNEL_TABLE_FN avx2_kernel_table
#include "decoder/addressing_kernels_body.inc"
#else
namespace nwdec::decoder::detail {
const kernel_table* avx2_kernel_table() { return nullptr; }
}  // namespace nwdec::decoder::detail
#endif
