#include "decoder/addressing.h"

#include <algorithm>

#include "util/error.h"

namespace nwdec::decoder {

bool conducts(const codes::code_word& pattern,
              const codes::code_word& address) {
  return pattern.componentwise_le(address);
}

bool conducts(const std::vector<double>& realized_vt,
              const std::vector<double>& gate_voltages) {
  NWDEC_EXPECTS(realized_vt.size() == gate_voltages.size(),
                "one gate voltage per doping region required");
  for (std::size_t j = 0; j < realized_vt.size(); ++j) {
    if (gate_voltages[j] <= realized_vt[j]) return false;
  }
  return true;
}

std::vector<double> drive_pattern(const codes::code_word& w,
                                  const device::vt_levels& levels) {
  NWDEC_EXPECTS(w.radix() == levels.radix(),
                "address radix must match the level count");
  std::vector<double> out;
  out.reserve(w.length());
  for (std::size_t j = 0; j < w.length(); ++j) {
    out.push_back(levels.drive_voltage(w.at(j)));
  }
  return out;
}

std::vector<std::size_t> addressed_rows(const matrix<codes::digit>& pattern,
                                        unsigned radix,
                                        const codes::code_word& address) {
  NWDEC_EXPECTS(pattern.cols() == address.length(),
                "address length must match the region count");
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pattern.rows(); ++i) {
    const codes::code_word row(radix, pattern.row(i));
    if (conducts(row, address)) out.push_back(i);
  }
  return out;
}

bool uniquely_addressable(const std::vector<codes::code_word>& words) {
  for (const codes::code_word& address : words) {
    std::size_t selected = 0;
    for (const codes::code_word& pattern : words) {
      if (conducts(pattern, address)) ++selected;
      if (selected > 1) return false;
    }
    if (selected != 1) return false;
  }
  return true;
}

address_table::address_table(std::vector<codes::code_word> words)
    : words_(std::move(words)) {
  NWDEC_EXPECTS(!words_.empty(), "address table needs at least one word");
  NWDEC_EXPECTS(uniquely_addressable(words_),
                "the word set is not uniquely addressable (not an antichain)");
}

const codes::code_word& address_table::address_of(std::size_t index) const {
  NWDEC_EXPECTS(index < words_.size(), "nanowire index out of range");
  return words_[index];
}

std::optional<std::size_t> address_table::select(
    const codes::code_word& address) const {
  // A valid selection turns on exactly one nanowire; an address that makes
  // several conduct (e.g. the all-high word) selects nothing usable.
  std::optional<std::size_t> selected;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (conducts(words_[i], address)) {
      if (selected.has_value()) return std::nullopt;
      selected = i;
    }
  }
  return selected;
}

}  // namespace nwdec::decoder
