#include "decoder/addressing.h"

#include <algorithm>

#if defined(NWDEC_SIMD_AVX2)
#include <immintrin.h>
#endif

#include "util/error.h"

namespace nwdec::decoder {

bool conducts(const codes::code_word& pattern,
              const codes::code_word& address) {
  return pattern.componentwise_le(address);
}

bool conducts(const std::vector<double>& realized_vt,
              const std::vector<double>& gate_voltages) {
  NWDEC_EXPECTS(realized_vt.size() == gate_voltages.size(),
                "one gate voltage per doping region required");
  for (std::size_t j = 0; j < realized_vt.size(); ++j) {
    if (gate_voltages[j] <= realized_vt[j]) return false;
  }
  return true;
}

namespace {

// Lane bodies of the blocked kernels. The default build relies on the
// auto-vectorizer (the loops are contiguous, branch-free, min/blend
// shaped); defining NWDEC_SIMD_AVX2 (CMake option NWDEC_SIMD) swaps in an
// explicit AVX2 path for the margin sweeps. Both paths perform the same
// IEEE operations per lane, so results are bit-identical either way.

#if defined(NWDEC_SIMD_AVX2)
// margin[t] = min(margin[t], gate - vt[t]) over one region's lane row.
inline void fold_margin_lanes(double gate, const double* __restrict vt,
                              double* __restrict margin, std::size_t lanes) {
  const __m256d g = _mm256_set1_pd(gate);
  std::size_t t = 0;
  for (; t + 4 <= lanes; t += 4) {
    const __m256d m = _mm256_loadu_pd(margin + t);
    const __m256d d = _mm256_sub_pd(g, _mm256_loadu_pd(vt + t));
    _mm256_storeu_pd(margin + t, _mm256_min_pd(d, m));
  }
  for (; t < lanes; ++t) {
    const double d = gate - vt[t];
    margin[t] = margin[t] < d ? margin[t] : d;
  }
}

// margin[t] = gate - vt[t] (the first region seeds the running margin).
inline void seed_margin_lanes(double gate, const double* __restrict vt,
                              double* __restrict margin, std::size_t lanes) {
  const __m256d g = _mm256_set1_pd(gate);
  std::size_t t = 0;
  for (; t + 4 <= lanes; t += 4) {
    _mm256_storeu_pd(margin + t,
                     _mm256_sub_pd(g, _mm256_loadu_pd(vt + t)));
  }
  for (; t < lanes; ++t) margin[t] = gate - vt[t];
}
#else
inline void fold_margin_lanes(double gate, const double* __restrict vt,
                              double* __restrict margin, std::size_t lanes) {
  for (std::size_t t = 0; t < lanes; ++t) {
    const double d = gate - vt[t];
    margin[t] = margin[t] < d ? margin[t] : d;
  }
}

inline void seed_margin_lanes(double gate, const double* __restrict vt,
                              double* __restrict margin, std::size_t lanes) {
  for (std::size_t t = 0; t < lanes; ++t) margin[t] = gate - vt[t];
}
#endif

// Four independent max accumulators: a single-accumulator FP max reduction
// is a loop-carried latency chain the vectorizer must not reassociate
// (strict IEEE), so unrolling by hand is what keeps this off the critical
// path -- it runs once per margin sweep, not once per region.
inline bool any_positive(const double* values, std::size_t lanes) {
  double a = values[0], b = a, c = a, d = a;
  std::size_t t = 1;
  for (; t + 4 <= lanes; t += 4) {
    a = a < values[t] ? values[t] : a;
    b = b < values[t + 1] ? values[t + 1] : b;
    c = c < values[t + 2] ? values[t + 2] : c;
    d = d < values[t + 3] ? values[t + 3] : d;
  }
  for (; t < lanes; ++t) a = a < values[t] ? values[t] : a;
  a = a < b ? b : a;
  c = c < d ? d : c;
  a = a < c ? c : a;
  return a > 0.0;
}

// Running min of (gate[j] - vt lanes) over every region -- the lane t
// verdict is margin[t] > 0. Deliberately no per-region early exit: the
// blocked kernel's exit condition would be "every lane already blocked",
// which across 64 lanes almost never happens mid-sweep (unlike the scalar
// path's per-lane exit), while the check itself costs a max reduction per
// region. A straight-line sweep is pure sub+min over contiguous lanes,
// which the vectorizer handles outright.
inline void margin_sweep(const double* gate, const double* lanes_base,
                         std::size_t lane_stride, std::size_t regions,
                         std::size_t lanes, double* margin) {
  seed_margin_lanes(gate[0], lanes_base, margin, lanes);
  for (std::size_t j = 1; j < regions; ++j) {
    fold_margin_lanes(gate[j], lanes_base + j * lane_stride, margin, lanes);
  }
}

}  // namespace

bool conducts_block(const double* gate_voltages, const double* realized_lanes,
                    std::size_t lane_stride, std::size_t regions,
                    std::size_t lanes, std::uint8_t* conducts_out) {
  NWDEC_EXPECTS(regions >= 1 && lanes >= 1,
                "conducts_block needs at least one region and one lane");
  NWDEC_EXPECTS(lane_stride >= lanes,
                "lane stride must cover every lane");
  // Chunked so the margin scratch lives on the stack whatever `lanes` is.
  constexpr std::size_t chunk = 128;
  double margin[chunk];
  bool any = false;
  for (std::size_t t0 = 0; t0 < lanes; t0 += chunk) {
    const std::size_t n = std::min(chunk, lanes - t0);
    margin_sweep(gate_voltages, realized_lanes + t0, lane_stride, regions, n,
                 margin);
    for (std::size_t t = 0; t < n; ++t) {
      const bool lane_conducts = margin[t] > 0.0;
      conducts_out[t0 + t] = lane_conducts ? 1 : 0;
      any = any || lane_conducts;
    }
  }
  return any;
}

bool addressable_block(const double* gate_voltages, const double* vt_lanes,
                       std::size_t lane_stride, std::size_t regions,
                       std::size_t lanes, std::size_t self,
                       const std::size_t* members, std::size_t member_count,
                       double* margin_scratch, double* addressable_out) {
  NWDEC_EXPECTS(regions >= 1 && lanes >= 1,
                "addressable_block needs at least one region and one lane");
  double* self_margin = margin_scratch;
  double* member_margin = margin_scratch + lanes;

  // Self first: lanes where the addressed nanowire itself blocks are dead
  // no matter what the rest of the group does. This is the one early-exit
  // mask that pays for its reduction -- at high sigma whole blocks die
  // here, skipping the entire member scan.
  const double* self_base = vt_lanes + self * regions * lane_stride;
  margin_sweep(gate_voltages, self_base, lane_stride, regions, lanes,
               self_margin);
  if (!any_positive(self_margin, lanes)) {
    for (std::size_t t = 0; t < lanes; ++t) addressable_out[t] = 0.0;
    return false;
  }

  // Impostors: a member that conducts in lane t makes the address ambiguous
  // there, so its positive-margin lanes are blended out of the running
  // self margin. Straight-line sweeps and unconditional blends: per-member
  // reductions would cost more than the lanes they could skip.
  for (std::size_t k = 0; k < member_count; ++k) {
    const std::size_t other = members[k];
    if (other == self) continue;
    const double* other_base = vt_lanes + other * regions * lane_stride;
    margin_sweep(gate_voltages, other_base, lane_stride, regions, lanes,
                 member_margin);
    for (std::size_t t = 0; t < lanes; ++t) {
      self_margin[t] = member_margin[t] > 0.0 ? -1.0 : self_margin[t];
    }
  }

  bool any = false;
  for (std::size_t t = 0; t < lanes; ++t) {
    const bool ok = self_margin[t] > 0.0;
    addressable_out[t] = ok ? 1.0 : 0.0;
    any = any || ok;
  }
  return any;
}

void addressable_group_block(const double* drive_table,
                             const double* vt_lanes, std::size_t lane_stride,
                             std::size_t regions, std::size_t lanes,
                             const std::size_t* members,
                             std::size_t member_count, double* margin_scratch,
                             double* out, std::size_t out_stride) {
  NWDEC_EXPECTS(member_count >= 1,
                "a contact group holds at least one member");
  NWDEC_EXPECTS(regions >= 1 && lanes >= 1,
                "addressable_group_block needs regions and lanes");
  double* self_margins = margin_scratch;  // one lane row per member
  double* sweep_margin = margin_scratch + member_count * lanes;

  // Per-member alive flags gate the blend pass; a group too large for the
  // stack buffer just treats everyone as alive (correct, merely slower).
  constexpr std::size_t max_tracked = 512;
  std::uint8_t alive[max_tracked];
  const bool track = member_count <= max_tracked;

  // Pass A: every member's own conduction margin (one sweep per row).
  bool any_alive = false;
  for (std::size_t k = 0; k < member_count; ++k) {
    const std::size_t row = members[k];
    margin_sweep(drive_table + row * regions,
                 vt_lanes + row * regions * lane_stride, lane_stride, regions,
                 lanes, self_margins + k * lanes);
    const bool ok = any_positive(self_margins + k * lanes, lanes);
    if (track) alive[k] = ok ? 1 : 0;
    any_alive = any_alive || ok;
  }
  if (!any_alive) {
    for (std::size_t k = 0; k < member_count; ++k) {
      double* row_out = out + k * out_stride;
      for (std::size_t t = 0; t < lanes; ++t) row_out[t] = 0.0;
    }
    return;
  }

  // Pass B: impostor vetoes, member-major so row o's lanes stay cache-hot
  // while every other member's drive sweeps across them.
  for (std::size_t o = 0; o < member_count; ++o) {
    const double* row_o =
        vt_lanes + members[o] * regions * lane_stride;
    for (std::size_t k = 0; k < member_count; ++k) {
      if (k == o || (track && alive[k] == 0)) continue;
      margin_sweep(drive_table + members[k] * regions, row_o, lane_stride,
                   regions, lanes, sweep_margin);
      double* __restrict mine = self_margins + k * lanes;
      const double* __restrict veto = sweep_margin;
      for (std::size_t t = 0; t < lanes; ++t) {
        mine[t] = veto[t] > 0.0 ? -1.0 : mine[t];
      }
    }
  }

  for (std::size_t k = 0; k < member_count; ++k) {
    const double* mine = self_margins + k * lanes;
    double* row_out = out + k * out_stride;
    for (std::size_t t = 0; t < lanes; ++t) {
      row_out[t] = mine[t] > 0.0 ? 1.0 : 0.0;
    }
  }
}

std::vector<double> drive_pattern(const codes::code_word& w,
                                  const device::vt_levels& levels) {
  std::vector<double> out;
  drive_pattern_into(w, levels, out);
  return out;
}

void drive_pattern_into(const codes::code_word& w,
                        const device::vt_levels& levels,
                        std::vector<double>& out) {
  NWDEC_EXPECTS(w.radix() == levels.radix(),
                "address radix must match the level count");
  out.resize(w.length());
  for (std::size_t j = 0; j < w.length(); ++j) {
    out[j] = levels.drive_voltage(w.at(j));
  }
}

std::vector<std::size_t> addressed_rows(const matrix<codes::digit>& pattern,
                                        unsigned radix,
                                        const codes::code_word& address) {
  NWDEC_EXPECTS(pattern.cols() == address.length(),
                "address length must match the region count");
  NWDEC_EXPECTS(address.radix() == radix,
                "address radix must match the pattern radix");
  // Compare row digits in place against the flat pattern buffer; building a
  // code_word per row would allocate O(rows) times per call.
  const std::size_t regions = pattern.cols();
  const codes::digit* address_digits = address.digits().data();
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pattern.rows(); ++i) {
    if (codes::componentwise_le(pattern.row_ptr(i), address_digits, regions)) {
      out.push_back(i);
    }
  }
  return out;
}

bool uniquely_addressable(const std::vector<codes::code_word>& words) {
  for (const codes::code_word& address : words) {
    std::size_t selected = 0;
    for (const codes::code_word& pattern : words) {
      if (conducts(pattern, address)) ++selected;
      if (selected > 1) return false;
    }
    if (selected != 1) return false;
  }
  return true;
}

address_table::address_table(std::vector<codes::code_word> words)
    : words_(std::move(words)) {
  NWDEC_EXPECTS(!words_.empty(), "address table needs at least one word");
  NWDEC_EXPECTS(uniquely_addressable(words_),
                "the word set is not uniquely addressable (not an antichain)");
}

const codes::code_word& address_table::address_of(std::size_t index) const {
  NWDEC_EXPECTS(index < words_.size(), "nanowire index out of range");
  return words_[index];
}

std::optional<std::size_t> address_table::select(
    const codes::code_word& address) const {
  // A valid selection turns on exactly one nanowire; an address that makes
  // several conduct (e.g. the all-high word) selects nothing usable.
  std::optional<std::size_t> selected;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (conducts(words_[i], address)) {
      if (selected.has_value()) return std::nullopt;
      selected = i;
    }
  }
  return selected;
}

}  // namespace nwdec::decoder
