#include "decoder/addressing.h"

#include <algorithm>

#include "util/error.h"

namespace nwdec::decoder {

bool conducts(const codes::code_word& pattern,
              const codes::code_word& address) {
  return pattern.componentwise_le(address);
}

bool conducts(const std::vector<double>& realized_vt,
              const std::vector<double>& gate_voltages) {
  NWDEC_EXPECTS(realized_vt.size() == gate_voltages.size(),
                "one gate voltage per doping region required");
  for (std::size_t j = 0; j < realized_vt.size(); ++j) {
    if (gate_voltages[j] <= realized_vt[j]) return false;
  }
  return true;
}

std::vector<double> drive_pattern(const codes::code_word& w,
                                  const device::vt_levels& levels) {
  std::vector<double> out;
  drive_pattern_into(w, levels, out);
  return out;
}

void drive_pattern_into(const codes::code_word& w,
                        const device::vt_levels& levels,
                        std::vector<double>& out) {
  NWDEC_EXPECTS(w.radix() == levels.radix(),
                "address radix must match the level count");
  out.resize(w.length());
  for (std::size_t j = 0; j < w.length(); ++j) {
    out[j] = levels.drive_voltage(w.at(j));
  }
}

std::vector<std::size_t> addressed_rows(const matrix<codes::digit>& pattern,
                                        unsigned radix,
                                        const codes::code_word& address) {
  NWDEC_EXPECTS(pattern.cols() == address.length(),
                "address length must match the region count");
  NWDEC_EXPECTS(address.radix() == radix,
                "address radix must match the pattern radix");
  // Compare row digits in place against the flat pattern buffer; building a
  // code_word per row would allocate O(rows) times per call.
  const std::size_t regions = pattern.cols();
  const codes::digit* address_digits = address.digits().data();
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pattern.rows(); ++i) {
    if (codes::componentwise_le(pattern.row_ptr(i), address_digits, regions)) {
      out.push_back(i);
    }
  }
  return out;
}

bool uniquely_addressable(const std::vector<codes::code_word>& words) {
  for (const codes::code_word& address : words) {
    std::size_t selected = 0;
    for (const codes::code_word& pattern : words) {
      if (conducts(pattern, address)) ++selected;
      if (selected > 1) return false;
    }
    if (selected != 1) return false;
  }
  return true;
}

address_table::address_table(std::vector<codes::code_word> words)
    : words_(std::move(words)) {
  NWDEC_EXPECTS(!words_.empty(), "address table needs at least one word");
  NWDEC_EXPECTS(uniquely_addressable(words_),
                "the word set is not uniquely addressable (not an antichain)");
}

const codes::code_word& address_table::address_of(std::size_t index) const {
  NWDEC_EXPECTS(index < words_.size(), "nanowire index out of range");
  return words_[index];
}

std::optional<std::size_t> address_table::select(
    const codes::code_word& address) const {
  // A valid selection turns on exactly one nanowire; an address that makes
  // several conduct (e.g. the all-high word) selects nothing usable.
  std::optional<std::size_t> selected;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (conducts(words_[i], address)) {
      if (selected.has_value()) return std::nullopt;
      selected = i;
    }
  }
  return selected;
}

}  // namespace nwdec::decoder
