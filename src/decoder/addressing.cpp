#include "decoder/addressing.h"

#include "decoder/addressing_kernels.h"
#include "util/cpu.h"
#include "util/error.h"

namespace nwdec::decoder {

bool conducts(const codes::code_word& pattern,
              const codes::code_word& address) {
  return pattern.componentwise_le(address);
}

bool conducts(const std::vector<double>& realized_vt,
              const std::vector<double>& gate_voltages) {
  NWDEC_EXPECTS(realized_vt.size() == gate_voltages.size(),
                "one gate voltage per doping region required");
  for (std::size_t j = 0; j < realized_vt.size(); ++j) {
    if (gate_voltages[j] <= realized_vt[j]) return false;
  }
  return true;
}

namespace detail {

const kernel_table* kernel_table_for(cpu::simd_path path) {
  switch (path) {
    case cpu::simd_path::scalar:
      return scalar_kernel_table();
    case cpu::simd_path::sse2:
      return sse2_kernel_table();
    case cpu::simd_path::avx2:
      return avx2_kernel_table();
    case cpu::simd_path::avx512:
      return avx512_kernel_table();
  }
  return scalar_kernel_table();
}

const kernel_table& active_kernel_table() {
  const kernel_table* table = kernel_table_for(cpu::active_path());
  // active_path() only hands out compiled paths (cpu::path_compiled gates
  // on the identically-conditioned rng tables); a null table here means
  // the two kernel sets' build gating diverged.
  NWDEC_ENSURES(table != nullptr,
                "active SIMD path has no compiled margin-kernel table");
  return *table;
}

}  // namespace detail

bool conducts_block(const double* gate_voltages, const double* realized_lanes,
                    std::size_t lane_stride, std::size_t regions,
                    std::size_t lanes, std::uint8_t* conducts_out) {
  NWDEC_EXPECTS(regions >= 1 && lanes >= 1,
                "conducts_block needs at least one region and one lane");
  NWDEC_EXPECTS(lane_stride >= lanes,
                "lane stride must cover every lane");
  return detail::active_kernel_table().conducts_block(
      gate_voltages, realized_lanes, lane_stride, regions, lanes,
      conducts_out);
}

bool addressable_block(const double* gate_voltages, const double* vt_lanes,
                       std::size_t lane_stride, std::size_t regions,
                       std::size_t lanes, std::size_t self,
                       const std::size_t* members, std::size_t member_count,
                       double* margin_scratch, double* addressable_out) {
  NWDEC_EXPECTS(regions >= 1 && lanes >= 1,
                "addressable_block needs at least one region and one lane");
  return detail::active_kernel_table().addressable_block(
      gate_voltages, vt_lanes, lane_stride, regions, lanes, self, members,
      member_count, margin_scratch, addressable_out);
}

void addressable_group_block(const double* drive_table,
                             const double* vt_lanes, std::size_t lane_stride,
                             std::size_t regions, std::size_t lanes,
                             const std::size_t* members,
                             std::size_t member_count, double* margin_scratch,
                             double* out, std::size_t out_stride) {
  NWDEC_EXPECTS(member_count >= 1,
                "a contact group holds at least one member");
  NWDEC_EXPECTS(regions >= 1 && lanes >= 1,
                "addressable_group_block needs regions and lanes");
  detail::active_kernel_table().addressable_group_block(
      drive_table, vt_lanes, lane_stride, regions, lanes, members,
      member_count, margin_scratch, out, out_stride);
}

bool window_margin_block(const double* vt_lanes_row, std::size_t lane_stride,
                         std::size_t lanes, const double* nominal,
                         const double* low_guard, double window_half_width,
                         std::size_t regions, double* margin, double* out) {
  NWDEC_EXPECTS(regions >= 1 && lanes >= 1,
                "window_margin_block needs at least one region and one lane");
  return detail::active_kernel_table().window_margin_block(
      vt_lanes_row, lane_stride, lanes, nominal, low_guard,
      window_half_width, regions, margin, out);
}

std::vector<double> drive_pattern(const codes::code_word& w,
                                  const device::vt_levels& levels) {
  std::vector<double> out;
  drive_pattern_into(w, levels, out);
  return out;
}

void drive_pattern_into(const codes::code_word& w,
                        const device::vt_levels& levels,
                        std::vector<double>& out) {
  NWDEC_EXPECTS(w.radix() == levels.radix(),
                "address radix must match the level count");
  out.resize(w.length());
  for (std::size_t j = 0; j < w.length(); ++j) {
    out[j] = levels.drive_voltage(w.at(j));
  }
}

std::vector<std::size_t> addressed_rows(const matrix<codes::digit>& pattern,
                                        unsigned radix,
                                        const codes::code_word& address) {
  NWDEC_EXPECTS(pattern.cols() == address.length(),
                "address length must match the region count");
  NWDEC_EXPECTS(address.radix() == radix,
                "address radix must match the pattern radix");
  // Compare row digits in place against the flat pattern buffer; building a
  // code_word per row would allocate O(rows) times per call.
  const std::size_t regions = pattern.cols();
  const codes::digit* address_digits = address.digits().data();
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pattern.rows(); ++i) {
    if (codes::componentwise_le(pattern.row_ptr(i), address_digits, regions)) {
      out.push_back(i);
    }
  }
  return out;
}

bool uniquely_addressable(const std::vector<codes::code_word>& words) {
  for (const codes::code_word& address : words) {
    std::size_t selected = 0;
    for (const codes::code_word& pattern : words) {
      if (conducts(pattern, address)) ++selected;
      if (selected > 1) return false;
    }
    if (selected != 1) return false;
  }
  return true;
}

address_table::address_table(std::vector<codes::code_word> words)
    : words_(std::move(words)) {
  NWDEC_EXPECTS(!words_.empty(), "address table needs at least one word");
  NWDEC_EXPECTS(uniquely_addressable(words_),
                "the word set is not uniquely addressable (not an antichain)");
}

const codes::code_word& address_table::address_of(std::size_t index) const {
  NWDEC_EXPECTS(index < words_.size(), "nanowire index out of range");
  return words_[index];
}

std::optional<std::size_t> address_table::select(
    const codes::code_word& address) const {
  // A valid selection turns on exactly one nanowire; an address that makes
  // several conduct (e.g. the all-high word) selects nothing usable.
  std::optional<std::size_t> selected;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (conducts(words_[i], address)) {
      if (selected.has_value()) return std::nullopt;
      selected = i;
    }
  }
  return selected;
}

}  // namespace nwdec::decoder
