// Empirical verification of Propositions 4-5: among all arrangements of a
// code space, transition-minimal (Gray) arrangements minimize both the
// variability norm ||Sigma||_1 and the fabrication complexity Phi.
//
// For small spaces the check is exhaustive over every permutation of the
// base words; for larger spaces a random sample of arrangements is compared
// instead. Used by the property tests and by bench/ablation_arrangement.
#pragma once

#include <cstddef>

#include "codes/code_space.h"
#include "device/tech_params.h"
#include "util/rng.h"

namespace nwdec::decoder {

/// Costs of one arrangement of a fixed word set.
struct arrangement_costs {
  std::size_t fabrication_complexity = 0;  ///< Phi
  std::size_t variability_sigma_units = 0;  ///< ||Sigma||_1 / sigma_T^2
};

/// Evaluates Phi and ||Sigma||_1 for the pattern sequence `sequence`
/// (already full-length words) over `nanowires` nanowires, cycling when
/// needed.
arrangement_costs evaluate_arrangement(
    const std::vector<codes::code_word>& sequence, std::size_t nanowires,
    const device::technology& tech);

/// Outcome of comparing a reference arrangement against alternatives.
///
/// Note on Phi: the paper's Proposition 5 argues over the transition rows
/// of S, but the *last* row's step count phi_{N-1} equals the number of
/// distinct dose values in the final word, which depends on which word the
/// arrangement ends with (e.g. the reflected ternary word 1111 needs a
/// single dose). Gray arrangements therefore minimize Phi among
/// arrangements ending in the same word; `best_other_phi_same_last`
/// captures that like-for-like minimum, while `best_other` is the global
/// minimum including the last-word effect. ||Sigma||_1 has no such caveat:
/// the last row of nu is all-ones for every arrangement.
struct optimality_report {
  std::size_t arrangements_tested = 0;
  arrangement_costs reference;  ///< costs of the reference arrangement
  arrangement_costs best_other; ///< minima over the tested alternatives
  /// Minimal Phi among tested arrangements that end with the same word as
  /// the reference (SIZE_MAX when none was tested).
  std::size_t best_other_phi_same_last = 0;
  bool reference_minimizes_phi = false;        ///< vs best_other_phi_same_last
  bool reference_minimizes_phi_globally = false;  ///< vs best_other
  bool reference_minimizes_sigma = false;
};

/// Exhaustively permutes `base_words` (reflecting each arrangement when
/// `reflect` is set), evaluates all arrangements over `nanowires`
/// nanowires, and reports whether `reference_sequence` attains the minima.
/// base_words.size() must be <= 8 (8! = 40320 arrangements).
optimality_report compare_exhaustive(
    const std::vector<codes::code_word>& base_words, bool reflect,
    const std::vector<codes::code_word>& reference_sequence,
    std::size_t nanowires, const device::technology& tech);

/// Same comparison against `samples` uniformly random permutations; for
/// spaces too large to exhaust.
optimality_report compare_sampled(
    const std::vector<codes::code_word>& base_words, bool reflect,
    const std::vector<codes::code_word>& reference_sequence,
    std::size_t nanowires, const device::technology& tech,
    std::size_t samples, rng& random);

}  // namespace nwdec::decoder
