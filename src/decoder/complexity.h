// Fabrication complexity Phi (Definition 4).
//
// Each row of S is one post-spacer patterning procedure; every *distinct
// non-zero* dose value in the row needs its own lithography/implantation
// pass (same-valued doses share one mask and one implant). phi_i counts
// them, and Phi = sum_i phi_i is the total number of additional
// lithography/doping steps the decoder adds to the MSPT flow.
//
// Dose values are physical quantities (cm^-3) compared with a relative
// tolerance: h is nonlinear, so analytically distinct level differences
// stay distinct numerically, but exact == would be brittle.
#pragma once

#include <cstddef>
#include <vector>

#include "util/matrix.h"

namespace nwdec::decoder {

/// Default relative tolerance for "the same dose".
inline constexpr double default_dose_tolerance = 1e-9;

/// Number of distinct non-zero dose values in row `row` of S (phi_row).
std::size_t step_complexity(const matrix<double>& step, std::size_t row,
                            double rel_tol = default_dose_tolerance);

/// phi_i for every row of S.
std::vector<std::size_t> per_step_complexity(
    const matrix<double>& step, double rel_tol = default_dose_tolerance);

/// Phi: total number of additional lithography/doping steps.
std::size_t fabrication_complexity(const matrix<double>& step,
                                   double rel_tol = default_dose_tolerance);

}  // namespace nwdec::decoder
