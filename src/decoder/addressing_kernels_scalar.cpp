// Scalar instantiation of the blocked margin kernels: compiled with the
// auto-vectorizer disabled (-fno-tree-vectorize) so it is the genuinely
// scalar oracle every wider path is compared against, not just a copy of
// the baseline-autovectorized sse2 path.
#include "decoder/addressing_kernels.h"

#define NWDEC_ADDR_KERNEL_PATH_NAME "scalar"
#define NWDEC_ADDR_KERNEL_TABLE_FN scalar_kernel_table
#include "decoder/addressing_kernels_body.inc"
