// Internal per-path kernel tables behind the runtime SIMD dispatch of the
// blocked margin kernels (decoder/addressing.h) and the blocked window
// criterion (yield/trial_context).
//
// Each table is produced by one translation unit compiled for one target
// ISA -- addressing_kernels_{scalar,sse2,avx2,avx512}.cpp all include
// addressing_kernels_body.inc with different compiler flags -- and the
// public entry points in addressing.cpp pick a table through
// cpu::active_path(). Every path performs the same IEEE operations per
// lane (sub, min, ordered compares, blends, all with FP contraction
// disabled), so the tables are bit-identical in results and differ only in
// throughput.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/cpu.h"

namespace nwdec::decoder::detail {

struct kernel_table {
  const char* name;

  /// decoder::conducts_block's kernel (same contract; argument checks live
  /// in the public wrapper).
  bool (*conducts_block)(const double* gate_voltages,
                         const double* realized_lanes, std::size_t lane_stride,
                         std::size_t regions, std::size_t lanes,
                         std::uint8_t* conducts_out);

  /// decoder::addressable_block's kernel.
  bool (*addressable_block)(const double* gate_voltages,
                            const double* vt_lanes, std::size_t lane_stride,
                            std::size_t regions, std::size_t lanes,
                            std::size_t self, const std::size_t* members,
                            std::size_t member_count, double* margin_scratch,
                            double* addressable_out);

  /// decoder::addressable_group_block's kernel.
  void (*addressable_group_block)(const double* drive_table,
                                  const double* vt_lanes,
                                  std::size_t lane_stride, std::size_t regions,
                                  std::size_t lanes,
                                  const std::size_t* members,
                                  std::size_t member_count,
                                  double* margin_scratch, double* out,
                                  std::size_t out_stride);

  /// decoder::window_margin_block's kernel.
  bool (*window_margin_block)(const double* vt_lanes_row,
                              std::size_t lane_stride, std::size_t lanes,
                              const double* nominal, const double* low_guard,
                              double window_half_width, std::size_t regions,
                              double* margin, double* out);
};

/// Per-path table getters; nullptr when the build could not compile that
/// ISA. scalar is never null. Gated by the same preprocessor conditions as
/// the rng kernel tables (util/rng_kernels.h), which cpu::path_compiled
/// consults for both sets.
const kernel_table* scalar_kernel_table();
const kernel_table* sse2_kernel_table();
const kernel_table* avx2_kernel_table();
const kernel_table* avx512_kernel_table();

/// The table for `path`, or nullptr when that path is not compiled in.
const kernel_table* kernel_table_for(cpu::simd_path path);

/// The table cpu::active_path() selects. Throws logic_invariant_error if
/// the active path has no compiled table (build/dispatch skew).
const kernel_table& active_kernel_table();

}  // namespace nwdec::decoder::detail
