// SSE2 instantiation of the blocked margin kernels: plain loops at the
// x86-64 baseline, where the auto-vectorizer emits 2-wide SSE2 code -- the
// default path of the pre-dispatch builds. A stub (nullptr table) on
// targets without SSE2.
#include "decoder/addressing_kernels.h"

#if defined(__SSE2__)
#define NWDEC_ADDR_KERNEL_PATH_NAME "sse2"
#define NWDEC_ADDR_KERNEL_TABLE_FN sse2_kernel_table
#include "decoder/addressing_kernels_body.inc"
#else
namespace nwdec::decoder::detail {
const kernel_table* sse2_kernel_table() { return nullptr; }
}  // namespace nwdec::decoder::detail
#endif
