// Decoder variability (Definition 5).
//
// Region (i, j) receives one dose for every non-zero S[k][j] with k >= i;
// doses are stochastically independent, so variances add:
//
//   nu[i][j]    = #{ k >= i : S[k][j] != 0 }
//   Sigma[i][j] = sigma_T^2 * nu[i][j]        [V^2]
//
// ||Sigma||_1 (the entrywise 1-norm) is the paper's reliability cost
// function; Propositions 4-5 show Gray arrangements minimize it together
// with Phi because nu grows exactly with the digit transitions between
// successive pattern rows.
#pragma once

#include <cstddef>

#include "util/matrix.h"

namespace nwdec::decoder {

/// nu: how many doses each region accumulates.
matrix<std::size_t> dose_count_matrix(const matrix<double>& step);

/// Sigma = sigma_vt^2 * nu, in V^2.
matrix<double> variability_matrix(const matrix<std::size_t>& dose_counts,
                                  double sigma_vt);

/// ||Sigma||_1 in units of sigma_T^2, i.e. simply the sum of nu. This is
/// the form the paper reports (Examples 4-5: 22 sigma^2 vs 18 sigma^2).
std::size_t variability_norm_sigma_units(
    const matrix<std::size_t>& dose_counts);

/// Average variability ||Sigma||_1 / (N*M) in units of sigma_T^2.
double average_variability_sigma_units(
    const matrix<std::size_t>& dose_counts);

/// Per-region standard deviation matrix sqrt(Sigma) in volts; the inputs
/// the yield analysis consumes.
matrix<double> stddev_matrix(const matrix<std::size_t>& dose_counts,
                             double sigma_vt);

}  // namespace nwdec::decoder
