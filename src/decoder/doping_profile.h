// Final and step doping matrices (Definitions 2-3, Propositions 1-2).
//
// D[i][j] = h(P[i][j]) is the doping level region (i, j) must end up with.
// The MSPT constraint is that the dose applied after defining nanowire k
// lands on *every* earlier nanowire too, so the per-step doses S satisfy
//
//     D[i][j] = sum_{k = i}^{N-1} S[k][j]        (Proposition 2)
//
// which inverts to the backward difference S[i] = D[i] - D[i+1] (with
// S[N-1] = D[N-1]). Doses may be negative: a negative entry is a
// compensating implant of the opposite dopant species.
#pragma once

#include "codes/word.h"
#include "device/doping_map.h"
#include "util/matrix.h"

namespace nwdec::decoder {

/// Elementwise application of h: maps each pattern digit to its doping
/// level using `doses` (index = digit value, cm^-3).
matrix<double> final_doping(const matrix<codes::digit>& pattern,
                            const device::dose_table& doses);

/// The step doping matrix S solving Proposition 2 for a given D; unique,
/// computed as the backward difference along the nanowire axis.
matrix<double> step_doping(const matrix<double>& final);

/// Reconstructs D from S (suffix sums); inverse of step_doping, used by
/// round-trip tests and the process simulator.
matrix<double> accumulate_doping(const matrix<double>& step);

}  // namespace nwdec::decoder
