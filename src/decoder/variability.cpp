#include "decoder/variability.h"

#include <cmath>

#include "util/error.h"

namespace nwdec::decoder {

matrix<std::size_t> dose_count_matrix(const matrix<double>& step) {
  NWDEC_EXPECTS(!step.empty(), "dose counts of an empty step matrix");
  const std::size_t rows = step.rows();
  const std::size_t cols = step.cols();
  matrix<std::size_t> counts(rows, cols);
  for (std::size_t j = 0; j < cols; ++j) {
    std::size_t suffix = 0;
    for (std::size_t i = rows; i-- > 0;) {
      if (step(i, j) != 0.0) ++suffix;
      counts(i, j) = suffix;
    }
  }
  return counts;
}

matrix<double> variability_matrix(const matrix<std::size_t>& dose_counts,
                                  double sigma_vt) {
  NWDEC_EXPECTS(sigma_vt >= 0.0, "sigma_vt cannot be negative");
  const double var = sigma_vt * sigma_vt;
  return dose_counts.map<double>(
      [var](std::size_t nu) { return var * static_cast<double>(nu); });
}

std::size_t variability_norm_sigma_units(
    const matrix<std::size_t>& dose_counts) {
  return dose_counts.sum();
}

double average_variability_sigma_units(
    const matrix<std::size_t>& dose_counts) {
  NWDEC_EXPECTS(!dose_counts.empty(), "average variability of empty matrix");
  return static_cast<double>(dose_counts.sum()) /
         static_cast<double>(dose_counts.size());
}

matrix<double> stddev_matrix(const matrix<std::size_t>& dose_counts,
                             double sigma_vt) {
  NWDEC_EXPECTS(sigma_vt >= 0.0, "sigma_vt cannot be negative");
  return dose_counts.map<double>([sigma_vt](std::size_t nu) {
    return sigma_vt * std::sqrt(static_cast<double>(nu));
  });
}

}  // namespace nwdec::decoder
