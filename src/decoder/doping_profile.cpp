#include "decoder/doping_profile.h"

#include "util/error.h"

namespace nwdec::decoder {

matrix<double> final_doping(const matrix<codes::digit>& pattern,
                            const device::dose_table& doses) {
  NWDEC_EXPECTS(!pattern.empty(), "final doping of an empty pattern");
  matrix<double> out(pattern.rows(), pattern.cols());
  for (std::size_t i = 0; i < pattern.rows(); ++i) {
    for (std::size_t j = 0; j < pattern.cols(); ++j) {
      const codes::digit v = pattern(i, j);
      NWDEC_EXPECTS(v < doses.size(),
                    "pattern digit has no entry in the dose table");
      out(i, j) = doses[v];
    }
  }
  return out;
}

matrix<double> step_doping(const matrix<double>& final) {
  NWDEC_EXPECTS(!final.empty(), "step doping of an empty matrix");
  const std::size_t rows = final.rows();
  const std::size_t cols = final.cols();
  matrix<double> step(rows, cols);
  for (std::size_t j = 0; j < cols; ++j) {
    step(rows - 1, j) = final(rows - 1, j);
    for (std::size_t i = 0; i + 1 < rows; ++i) {
      step(i, j) = final(i, j) - final(i + 1, j);
    }
  }
  return step;
}

matrix<double> accumulate_doping(const matrix<double>& step) {
  NWDEC_EXPECTS(!step.empty(), "accumulating an empty step matrix");
  const std::size_t rows = step.rows();
  const std::size_t cols = step.cols();
  matrix<double> final(rows, cols);
  for (std::size_t j = 0; j < cols; ++j) {
    double suffix = 0.0;
    for (std::size_t i = rows; i-- > 0;) {
      suffix += step(i, j);
      final(i, j) = suffix;
    }
  }
  return final;
}

}  // namespace nwdec::decoder
