#include "decoder/decoder_design.h"

#include "decoder/complexity.h"
#include "decoder/doping_profile.h"
#include "decoder/pattern_matrix.h"
#include "decoder/variability.h"
#include "util/error.h"

namespace nwdec::decoder {

decoder_design::decoder_design(codes::code code, std::size_t nanowires,
                               const device::technology& tech)
    // `code` is copied (not moved) into the delegated constructor because
    // the dose-table argument also reads code.radix and evaluation order
    // between the two arguments is unspecified.
    : decoder_design(code, nanowires, tech,
                     device::physical_dose_table(code.radix, tech)) {}

decoder_design::decoder_design(codes::code code, std::size_t nanowires,
                               const device::technology& tech,
                               device::dose_table doses)
    : code_(std::move(code)),
      tech_(tech),
      levels_(code_.radix, tech),
      doses_(device::validated_dose_table(std::move(doses))),
      pattern_(pattern_matrix(code_, nanowires)),
      final_doping_(decoder::final_doping(pattern_, doses_)),
      step_doping_(decoder::step_doping(final_doping_)),
      dose_counts_(decoder::dose_count_matrix(step_doping_)),
      complexity_(decoder::fabrication_complexity(step_doping_)) {
  NWDEC_EXPECTS(doses_.size() >= code_.radix,
                "dose table must cover every digit value of the code");
}

matrix<double> decoder_design::variability() const {
  return variability_matrix(dose_counts_, tech_.sigma_vt);
}

matrix<double> decoder_design::region_stddev() const {
  return stddev_matrix(dose_counts_, tech_.sigma_vt);
}

std::size_t decoder_design::variability_norm_sigma_units() const {
  return decoder::variability_norm_sigma_units(dose_counts_);
}

double decoder_design::average_variability_sigma_units() const {
  return decoder::average_variability_sigma_units(dose_counts_);
}

}  // namespace nwdec::decoder
