#include "decoder/complexity.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace nwdec::decoder {

namespace {

bool same_dose(double a, double b, double rel_tol) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= rel_tol * scale;
}

}  // namespace

std::size_t step_complexity(const matrix<double>& step, std::size_t row,
                            double rel_tol) {
  NWDEC_EXPECTS(row < step.rows(), "step row out of range");
  NWDEC_EXPECTS(rel_tol >= 0.0, "dose tolerance cannot be negative");
  std::vector<double> doses;
  for (std::size_t j = 0; j < step.cols(); ++j) {
    const double dose = step(row, j);
    if (dose == 0.0) continue;
    const bool seen = std::any_of(
        doses.begin(), doses.end(),
        [&](double d) { return same_dose(d, dose, rel_tol); });
    if (!seen) doses.push_back(dose);
  }
  return doses.size();
}

std::vector<std::size_t> per_step_complexity(const matrix<double>& step,
                                             double rel_tol) {
  std::vector<std::size_t> out(step.rows());
  for (std::size_t i = 0; i < step.rows(); ++i) {
    out[i] = step_complexity(step, i, rel_tol);
  }
  return out;
}

std::size_t fabrication_complexity(const matrix<double>& step,
                                   double rel_tol) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < step.rows(); ++i) {
    total += step_complexity(step, i, rel_tol);
  }
  return total;
}

}  // namespace nwdec::decoder
