#include "crossbar/remap.h"

#include "util/error.h"

namespace nwdec::crossbar {

remap_controller::remap_controller(crossbar_memory memory,
                                   std::vector<codes::code_word> row_words,
                                   std::vector<codes::code_word> col_words)
    : memory_(std::move(memory)),
      row_words_(std::move(row_words)),
      col_words_(std::move(col_words)) {
  NWDEC_EXPECTS(row_words_.size() == memory_.rows(),
                "one physical word per row required");
  NWDEC_EXPECTS(col_words_.size() == memory_.cols(),
                "one physical word per column required");

  // Probe each line once through the memory itself: a line is usable when
  // a write through it is accepted. Probing writes 0, which is also the
  // memory's initial state, so probing is non-destructive.
  for (std::size_t r = 0; r < memory_.rows(); ++r) {
    for (std::size_t c = 0; c < memory_.cols(); ++c) {
      if (memory_.write(row_words_[r], col_words_[c], false)) {
        row_map_.push_back(r);
        break;
      }
    }
  }
  for (std::size_t c = 0; c < memory_.cols(); ++c) {
    for (std::size_t r = 0; r < memory_.rows(); ++r) {
      if (memory_.write(row_words_[r], col_words_[c], false)) {
        col_map_.push_back(c);
        break;
      }
    }
  }
}

bool remap_controller::write(std::size_t logical_row, std::size_t logical_col,
                             bool value) {
  NWDEC_EXPECTS(logical_row < rows() && logical_col < cols(),
                "logical coordinates out of range");
  return memory_.write(row_words_[row_map_[logical_row]],
                       col_words_[col_map_[logical_col]], value);
}

std::optional<bool> remap_controller::read(std::size_t logical_row,
                                           std::size_t logical_col) const {
  NWDEC_EXPECTS(logical_row < rows() && logical_col < cols(),
                "logical coordinates out of range");
  return memory_.read(row_words_[row_map_[logical_row]],
                      col_words_[col_map_[logical_col]]);
}

std::size_t remap_controller::physical_row(std::size_t logical_row) const {
  NWDEC_EXPECTS(logical_row < rows(), "logical row out of range");
  return row_map_[logical_row];
}

std::size_t remap_controller::physical_col(std::size_t logical_col) const {
  NWDEC_EXPECTS(logical_col < cols(), "logical column out of range");
  return col_map_[logical_col];
}

}  // namespace nwdec::crossbar
