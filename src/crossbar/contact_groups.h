// Contact-group planning (Sec. 2.2 and 6.1).
//
// A contact group is the smallest set of adjacent nanowires one
// lithographic mesowire contact can reach; within a group every nanowire
// must carry a distinct code word, so a group holds at most Omega
// nanowires. Layout rules bound the group width from below at
// contact_min_width_factor * P_L. The planner minimizes the number of
// groups per half cave (fewest contacts, fewest boundaries).
//
// Group boundaries are lithographic edges over a sub-lithographic array:
// a nanowire overlapping the boundary uncertainty band w_b may end up
// contacted by *two* adjacent groups. Such a nanowire answers an address
// on both contacts, so it is removed from the addressable set (paper
// following DeHon [6]). Which nanowire the misaligned edge actually clips
// varies die to die, so the model is probabilistic: nanowire i is at risk
// with probability equal to the overlap of its footprint with the band
// (the analytic yield uses the expectation, the Monte Carlo samples it).
#pragma once

#include <cstddef>
#include <vector>

#include "device/tech_params.h"

namespace nwdec::crossbar {

/// Partition of one half cave into contact groups.
struct contact_group_plan {
  std::size_t nanowire_count = 0;   ///< N, nanowires in the half cave
  std::size_t code_space = 0;       ///< Omega
  std::size_t group_size = 0;       ///< nanowires per full group (C)
  std::size_t group_count = 0;      ///< G = ceil(N / C)
  std::size_t min_group_size = 0;   ///< layout-rule lower bound in nanowires
  double group_width_nm = 0.0;      ///< C * P_N

  /// One nanowire at risk of double contact at a group edge.
  struct boundary_risk {
    std::size_t nanowire = 0;
    double probability = 0.0;  ///< overlap of its footprint with the band
  };
  /// All at-risk nanowires, sorted by index, probabilities in (0, 1].
  std::vector<boundary_risk> boundary_risks;

  /// Indices of nanowires beyond the code space inside their group (only
  /// when the layout rule forces groups larger than Omega); always
  /// unaddressable.
  std::vector<std::size_t> excess_nanowires;

  /// Internal boundaries between adjacent groups: G - 1.
  std::size_t boundary_count() const {
    return group_count == 0 ? 0 : group_count - 1;
  }
  /// Group index of nanowire i.
  std::size_t group_of(std::size_t nanowire) const;
  /// Probability that nanowire i loses its contact: 1 for excess
  /// nanowires, the band-overlap fraction for boundary risks, else 0.
  double discard_probability(std::size_t nanowire) const;
  /// Expected number of discarded nanowires in the half cave.
  double expected_discarded() const;
};

/// Plans the contact groups for a half cave of `nanowires` nanowires
/// addressed from a code space of `code_space` words.
contact_group_plan plan_contact_groups(std::size_t nanowires,
                                       std::size_t code_space,
                                       const device::technology& tech);

}  // namespace nwdec::crossbar
