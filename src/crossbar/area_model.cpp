#include "crossbar/area_model.h"

#include "util/error.h"

namespace nwdec::crossbar {

area_breakdown estimate_area(const layer_geometry& geometry,
                             const device::technology& tech) {
  tech.validate();
  area_breakdown area;
  const double core_width =
      static_cast<double>(geometry.nanowire_count) * tech.nanowire_pitch_nm;
  area.array_core_nm2 = core_width * core_width;
  const double wall_width =
      static_cast<double>(geometry.cave_count) * tech.cave_wall_overhead_nm;
  // Walls widen both axes; count the full difference between the walled
  // array square and the core square.
  const double walled = core_width + wall_width;
  area.cave_overhead_nm2 = walled * walled - area.array_core_nm2;
  area.total_nm2 = geometry.total_area_nm2;
  area.decoder_nm2 = area.total_nm2 - walled * walled;
  return area;
}

double bit_area_nm2(const area_breakdown& area, double effective_bits) {
  NWDEC_EXPECTS(effective_bits > 0.0,
                "bit area undefined for a crossbar with no working bits");
  return area.total_nm2 / effective_bits;
}

}  // namespace nwdec::crossbar
