// Area accounting for the crossbar die and the per-bit figure of merit of
// Fig. 8: bit area = total die area / effective (working) crosspoints.
#pragma once

#include <cstddef>

#include "crossbar/geometry.h"

namespace nwdec::crossbar {

/// Die-area breakdown for a square crossbar.
struct area_breakdown {
  double array_core_nm2 = 0.0;     ///< nanowire-pitch area of the crosspoints
  double cave_overhead_nm2 = 0.0;  ///< sacrificial walls and clearances
  double decoder_nm2 = 0.0;        ///< mesowires + contact landings, both axes
  double total_nm2 = 0.0;          ///< side^2
};

/// Splits the layer geometry's total area into its contributions.
area_breakdown estimate_area(const layer_geometry& geometry,
                             const device::technology& tech);

/// Average area per *functional* bit: total area / effective bits. Throws
/// when effective_bits is not positive.
double bit_area_nm2(const area_breakdown& area, double effective_bits);

}  // namespace nwdec::crossbar
