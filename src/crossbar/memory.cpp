#include "crossbar/memory.h"

#include "util/error.h"

namespace nwdec::crossbar {

crossbar_memory::crossbar_memory(decoder::address_table row_table,
                                 decoder::address_table col_table,
                                 std::vector<bool> row_ok,
                                 std::vector<bool> col_ok)
    : row_table_(std::move(row_table)),
      col_table_(std::move(col_table)),
      row_ok_(std::move(row_ok)),
      col_ok_(std::move(col_ok)),
      bits_(row_ok_.size(), col_ok_.size(), 0) {
  NWDEC_EXPECTS(row_ok_.size() == row_table_.size(),
                "row mask must match the row address table");
  NWDEC_EXPECTS(col_ok_.size() == col_table_.size(),
                "column mask must match the column address table");
}

double crossbar_memory::usable_fraction() const {
  std::size_t usable_rows = 0;
  std::size_t usable_cols = 0;
  for (const bool ok : row_ok_) usable_rows += ok ? 1 : 0;
  for (const bool ok : col_ok_) usable_cols += ok ? 1 : 0;
  return static_cast<double>(usable_rows * usable_cols) /
         static_cast<double>(rows() * cols());
}

std::optional<std::pair<std::size_t, std::size_t>> crossbar_memory::resolve(
    const codes::code_word& row_address,
    const codes::code_word& col_address) const {
  const auto row = row_table_.select(row_address);
  const auto col = col_table_.select(col_address);
  if (!row || !col) return std::nullopt;
  if (!row_ok_[*row] || !col_ok_[*col]) return std::nullopt;
  return std::make_pair(*row, *col);
}

bool crossbar_memory::write(const codes::code_word& row_address,
                            const codes::code_word& col_address, bool value) {
  const auto cell = resolve(row_address, col_address);
  if (!cell) return false;
  bits_(cell->first, cell->second) = value ? 1 : 0;
  return true;
}

std::optional<bool> crossbar_memory::read(
    const codes::code_word& row_address,
    const codes::code_word& col_address) const {
  const auto cell = resolve(row_address, col_address);
  if (!cell) return std::nullopt;
  return bits_(cell->first, cell->second) != 0;
}

}  // namespace nwdec::crossbar
