// A functional crossbar memory built on the decoder address tables: the
// end-to-end artifact the paper's platform models statistically. Used by
// the examples and the integration tests to demonstrate that addressing,
// defect masking and storage compose.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "decoder/addressing.h"
#include "util/matrix.h"

namespace nwdec::crossbar {

/// One crosspoint block: a row contact group x a column contact group.
/// Rows/columns flagged unaddressable (decoder variability, boundary bands,
/// fabrication defects) reject every access.
class crossbar_memory {
 public:
  /// Builds the memory; `row_ok` / `col_ok` flag which nanowires decoded
  /// usable, sized like the corresponding address tables.
  crossbar_memory(decoder::address_table row_table,
                  decoder::address_table col_table, std::vector<bool> row_ok,
                  std::vector<bool> col_ok);

  /// Row / column counts of the block.
  std::size_t rows() const { return row_ok_.size(); }
  std::size_t cols() const { return col_ok_.size(); }

  /// Fraction of crosspoints whose row and column both work.
  double usable_fraction() const;

  /// Writes a bit through the decoders; returns false (and stores nothing)
  /// when either address selects no usable nanowire.
  bool write(const codes::code_word& row_address,
             const codes::code_word& col_address, bool value);

  /// Reads a bit through the decoders; nullopt when unaddressable.
  std::optional<bool> read(const codes::code_word& row_address,
                           const codes::code_word& col_address) const;

 private:
  std::optional<std::pair<std::size_t, std::size_t>> resolve(
      const codes::code_word& row_address,
      const codes::code_word& col_address) const;

  decoder::address_table row_table_;
  decoder::address_table col_table_;
  std::vector<bool> row_ok_;
  std::vector<bool> col_ok_;
  matrix<std::uint8_t> bits_;
};

}  // namespace nwdec::crossbar
