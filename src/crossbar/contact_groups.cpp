#include "crossbar/contact_groups.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace nwdec::crossbar {

std::size_t contact_group_plan::group_of(std::size_t nanowire) const {
  NWDEC_EXPECTS(nanowire < nanowire_count, "nanowire index out of range");
  return nanowire / group_size;
}

double contact_group_plan::discard_probability(std::size_t nanowire) const {
  NWDEC_EXPECTS(nanowire < nanowire_count, "nanowire index out of range");
  if (std::binary_search(excess_nanowires.begin(), excess_nanowires.end(),
                         nanowire)) {
    return 1.0;
  }
  const auto it = std::lower_bound(
      boundary_risks.begin(), boundary_risks.end(), nanowire,
      [](const boundary_risk& risk, std::size_t index) {
        return risk.nanowire < index;
      });
  if (it != boundary_risks.end() && it->nanowire == nanowire) {
    return it->probability;
  }
  return 0.0;
}

double contact_group_plan::expected_discarded() const {
  double expected = static_cast<double>(excess_nanowires.size());
  for (const boundary_risk& risk : boundary_risks) {
    if (!std::binary_search(excess_nanowires.begin(), excess_nanowires.end(),
                            risk.nanowire)) {
      expected += risk.probability;
    }
  }
  return expected;
}

contact_group_plan plan_contact_groups(std::size_t nanowires,
                                       std::size_t code_space,
                                       const device::technology& tech) {
  NWDEC_EXPECTS(nanowires >= 1, "a half cave holds at least one nanowire");
  NWDEC_EXPECTS(code_space >= 1, "the code space cannot be empty");
  tech.validate();

  contact_group_plan plan;
  plan.nanowire_count = nanowires;
  plan.code_space = code_space;
  plan.min_group_size = static_cast<std::size_t>(
      std::ceil(tech.contact_min_width_factor * tech.litho_pitch_nm /
                tech.nanowire_pitch_nm));

  // Fewest groups = largest group: bounded above by the code space (unique
  // addresses) unless the layout rule forces wider groups, and by N.
  plan.group_size =
      std::min(nanowires, std::max(code_space, plan.min_group_size));
  plan.group_count = (nanowires + plan.group_size - 1) / plan.group_size;
  plan.group_width_nm =
      static_cast<double>(plan.group_size) * tech.nanowire_pitch_nm;

  // Boundary uncertainty bands: the edge between groups g and g+1 sits at
  // x = (g+1) * C * P_N and its position is uncertain within +- w_b / 2.
  // A nanowire is at risk with probability equal to the fraction of its
  // footprint [i * P_N, (i+1) * P_N) covered by the band.
  const double pitch = tech.nanowire_pitch_nm;
  const double half_band = 0.5 * tech.boundary_band_nm;
  for (std::size_t g = 0; g + 1 < plan.group_count; ++g) {
    const double edge = static_cast<double>((g + 1) * plan.group_size) * pitch;
    const double band_lo = edge - half_band;
    const double band_hi = edge + half_band;
    const std::size_t first = static_cast<std::size_t>(
        std::max(0.0, std::floor(band_lo / pitch)));
    for (std::size_t i = first; i < nanowires; ++i) {
      const double lo = static_cast<double>(i) * pitch;
      const double hi = lo + pitch;
      if (lo >= band_hi) break;
      const double overlap = std::min(hi, band_hi) - std::max(lo, band_lo);
      if (overlap <= 0.0) continue;
      const double probability = std::min(1.0, overlap / pitch);
      plan.boundary_risks.push_back(
          contact_group_plan::boundary_risk{i, probability});
    }
  }
  // Merge duplicate indices (a nanowire can only be near one edge in
  // practice, but keep the invariant robust): keep the max probability.
  std::sort(plan.boundary_risks.begin(), plan.boundary_risks.end(),
            [](const auto& a, const auto& b) {
              return a.nanowire < b.nanowire ||
                     (a.nanowire == b.nanowire &&
                      a.probability > b.probability);
            });
  plan.boundary_risks.erase(
      std::unique(plan.boundary_risks.begin(), plan.boundary_risks.end(),
                  [](const auto& a, const auto& b) {
                    return a.nanowire == b.nanowire;
                  }),
      plan.boundary_risks.end());

  // When the layout rule forces groups beyond Omega, in-group positions
  // past the code space cannot receive a unique address.
  if (plan.group_size > code_space) {
    for (std::size_t i = 0; i < nanowires; ++i) {
      if (i % plan.group_size >= code_space) {
        plan.excess_nanowires.push_back(i);
      }
    }
  }
  return plan;
}

}  // namespace nwdec::crossbar
