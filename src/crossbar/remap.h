// Defect remapping: a thin controller that presents a dense logical
// address space over the sparse set of usable crossbar lines.
//
// The paper's effective density D_EFF counts the surviving crosspoints; a
// deployed memory also needs them *contiguous* from the host's point of
// view. The remap controller scans the usable row/column masks once,
// builds logical->physical line tables, and serves logical (row, col)
// accesses -- the standard row/column sparing scheme of DRAM, here driven
// by the decoder's addressability outcome instead of laser fuses.
#pragma once

#include <cstddef>
#include <optional>

#include "crossbar/memory.h"

namespace nwdec::crossbar {

/// Dense logical view over a partially usable crossbar_memory.
class remap_controller {
 public:
  /// Wraps `memory`; the usable masks are re-derived from the memory's
  /// own accept/reject behavior, so the controller never touches dead
  /// lines. `row_words` / `col_words` are the physical address words in
  /// line order (as used to build the memory).
  remap_controller(crossbar_memory memory,
                   std::vector<codes::code_word> row_words,
                   std::vector<codes::code_word> col_words);

  /// Logical dimensions: the usable line counts.
  std::size_t rows() const { return row_map_.size(); }
  std::size_t cols() const { return col_map_.size(); }
  /// Logical capacity in bits.
  std::size_t capacity_bits() const { return rows() * cols(); }

  /// Writes/reads through logical coordinates; logical coordinates are
  /// always valid when within rows()/cols() (that is the point).
  bool write(std::size_t logical_row, std::size_t logical_col, bool value);
  std::optional<bool> read(std::size_t logical_row,
                           std::size_t logical_col) const;

  /// Physical line behind a logical one (for diagnostics).
  std::size_t physical_row(std::size_t logical_row) const;
  std::size_t physical_col(std::size_t logical_col) const;

 private:
  crossbar_memory memory_;
  std::vector<codes::code_word> row_words_;
  std::vector<codes::code_word> col_words_;
  std::vector<std::size_t> row_map_;  ///< logical -> physical
  std::vector<std::size_t> col_map_;
};

}  // namespace nwdec::crossbar
