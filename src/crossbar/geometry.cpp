#include "crossbar/geometry.h"

#include <cmath>

#include "util/error.h"

namespace nwdec::crossbar {

void crossbar_spec::validate() const {
  NWDEC_EXPECTS(raw_bits >= 1, "a crossbar needs at least one crosspoint");
  NWDEC_EXPECTS(nanowires_per_half_cave >= 1,
                "a half cave holds at least one nanowire");
}

layer_geometry derive_layer_geometry(const crossbar_spec& spec,
                                     const device::technology& tech,
                                     std::size_t code_length,
                                     std::size_t contact_rows) {
  spec.validate();
  tech.validate();
  NWDEC_EXPECTS(code_length >= 1, "code length must be at least 1");
  NWDEC_EXPECTS(contact_rows >= 1, "need at least one contact row");

  layer_geometry geo;
  geo.nanowire_count = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(spec.raw_bits))));

  const std::size_t per_cave = 2 * spec.nanowires_per_half_cave;
  geo.cave_count = (geo.nanowire_count + per_cave - 1) / per_cave;
  geo.half_cave_count = 2 * geo.cave_count;

  geo.array_width_nm =
      static_cast<double>(geo.nanowire_count) * tech.nanowire_pitch_nm +
      static_cast<double>(geo.cave_count) * tech.cave_wall_overhead_nm;
  geo.decoder_length_nm =
      static_cast<double>(code_length) * tech.litho_pitch_nm +
      static_cast<double>(contact_rows) * tech.contact_depth_nm;
  geo.side_nm = geo.array_width_nm + geo.decoder_length_nm;
  geo.total_area_nm2 = geo.side_nm * geo.side_nm;
  return geo;
}

}  // namespace nwdec::crossbar
