// Crossbar geometry (Sec. 6.1): how many nanowires, caves and contact
// groups a square memory crossbar of given raw capacity needs, and how much
// silicon it occupies.
//
// The crossbar is square: two identical orthogonal nanowire layers, each
// fabricated as a row of MSPT caves. Every cave is seeded by one
// lithographically defined sacrificial wall and grows N spacers (nanowires)
// on each flank, so a cave contributes two half caves of N nanowires. The
// decoder (M mesowires at litho pitch plus the contact landing) extends one
// end of each layer.
#pragma once

#include <cstddef>

#include "device/tech_params.h"

namespace nwdec::crossbar {

/// Top-level crossbar sizing inputs.
struct crossbar_spec {
  /// Raw crosspoint count D_RAW; the paper's 16 kB memory.
  std::size_t raw_bits = 16 * 1024 * 8;
  /// Nanowires per half cave (N); set by the number of MSPT spacer
  /// iterations the process sustains.
  std::size_t nanowires_per_half_cave = 20;

  /// Throws invalid_argument_error when a field is out of range.
  void validate() const;
};

/// Derived per-layer geometry.
struct layer_geometry {
  std::size_t nanowire_count = 0;   ///< nanowires per layer (array side)
  std::size_t cave_count = 0;       ///< MSPT caves per layer
  std::size_t half_cave_count = 0;  ///< 2 * cave_count
  double array_width_nm = 0.0;      ///< nanowires + per-cave wall overhead
  double decoder_length_nm = 0.0;   ///< M mesowires + contact landing
  double side_nm = 0.0;             ///< array width + decoder extent
  double total_area_nm2 = 0.0;      ///< side^2 (square die)
};

/// Sizes one layer of the crossbar for a decoder with code length M.
/// The layer holds ceil(sqrt(raw_bits)) nanowires; caves are filled with
/// 2 * N nanowires each (the last cave may be partial). `contact_rows`
/// is the number of contact groups per half cave: every group needs its
/// own staggered mesowire landing of depth contact_depth_nm along the
/// nanowire axis, so small code spaces (many groups) pay decoder area.
layer_geometry derive_layer_geometry(const crossbar_spec& spec,
                                     const device::technology& tech,
                                     std::size_t code_length,
                                     std::size_t contact_rows = 1);

}  // namespace nwdec::crossbar
