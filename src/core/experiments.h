// Experiment definitions shared by the benchmark harnesses and the
// integration tests: one runner per figure of the paper's evaluation
// (Sec. 6.2), each returning the same series the figure plots, plus the
// paper's reported values for side-by-side comparison.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "codes/code_space.h"
#include "core/design_explorer.h"
#include "core/design_point.h"
#include "util/matrix.h"

namespace nwdec::core {

// ---------------------------------------------------------------- Fig. 5
/// Fabrication complexity per code and logic type (N = 10, two free
/// digits, i.e. full length M = 4 as reconstructed in DESIGN.md).
struct fig5_row {
  unsigned radix = 2;              ///< 2 = binary, 3 = ternary, 4 = quaternary
  std::size_t tree_phi = 0;        ///< Phi of the tree code
  std::size_t gray_phi = 0;        ///< Phi of the Gray code
  double gray_saving_percent = 0;  ///< (TC - GC) / TC * 100
};

/// Runs the Fig. 5 experiment.
std::vector<fig5_row> run_fig5(std::size_t nanowires = 10,
                               std::size_t full_length = 4);

// ---------------------------------------------------------------- Fig. 6
/// One variability surface: sqrt(Sigma/sigma_T^2) per (nanowire, digit).
struct fig6_surface {
  codes::code_type type = codes::code_type::tree;
  std::size_t length = 8;             ///< L (full word length)
  matrix<double> sqrt_normalized;     ///< sqrt(nu), N x L
  double average_variability = 0.0;   ///< ||Sigma||_1/(N*L) in sigma^2 units
  /// Mean of the plotted surface sqrt(Sigma/sigma^2) -- the quantity whose
  /// GC-vs-TC reduction reproduces the paper's 18% (std-dev units).
  double average_sqrt_level = 0.0;
  double worst_digit_level = 0.0;     ///< max over the surface
};

/// Runs the Fig. 6 experiment: binary TC/GC/BGC at L in {8, 10}, N = 20.
std::vector<fig6_surface> run_fig6(std::size_t nanowires = 20);

// ------------------------------------------------------------- Figs. 7/8
/// The binary design grid of the yield and bit-area figures:
/// TC/GC/BGC at M in {6, 8, 10} and HC/AHC at M in {4, 6, 8, 10}.
std::vector<design_point> yield_grid();

/// Fig. 7's own series: TC and BGC at {6, 8, 10}; HC and AHC at {4, 6, 8}.
std::vector<design_point> fig7_grid();

/// Runs a grid through the explorer's sweep engine (Fig. 7 yield and Fig. 8
/// bit area both read from the returned evaluations). `threads` shards the
/// design points across workers (0 = all cores); results are bit-identical
/// for any value.
std::vector<design_evaluation> run_yield_experiment(
    const design_explorer& explorer, const std::vector<design_point>& grid,
    std::size_t mc_trials = 0, std::uint64_t seed = 1,
    std::size_t threads = 0);

// --------------------------------------------------- paper reference data
/// The quantitative claims of Sec. 6.2, used by the harnesses to print
/// paper-vs-measured tables and by the integration tests as loose oracles.
struct paper_claims {
  // Fig. 5.
  static constexpr std::size_t binary_phi = 20;        ///< 2N for N = 10
  static constexpr std::size_t ternary_tree_phi = 24;  ///< ~20% over 2N
  static constexpr double gray_step_saving_percent = 17.0;
  // Fig. 6.
  static constexpr double variability_reduction_percent = 18.0;
  // Fig. 7.
  static constexpr double tree_6_to_10_gain_percent = 40.0;
  static constexpr double ahc_4_to_8_gain_percent = 40.0;
  static constexpr double bgc_vs_tree_at_8_percent = 42.0;
  static constexpr double ahc_vs_hot_at_8_percent = 19.0;
  // Fig. 8.
  static constexpr double tree_6_to_10_area_saving_percent = 51.0;
  static constexpr double bgc_vs_tree_area_at_8_percent = 30.0;
  static constexpr double best_bgc_bit_area_nm2 = 169.0;
  static constexpr double best_ahc_bit_area_nm2 = 175.0;
};

/// Finds the evaluation of (type, length) in a result set; throws
/// not_found_error when the grid did not contain it.
const design_evaluation& find_evaluation(
    const std::vector<design_evaluation>& evaluations, codes::code_type type,
    std::size_t length);

}  // namespace nwdec::core
