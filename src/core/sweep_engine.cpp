#include "core/sweep_engine.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <cstring>
#include <exception>
#include <thread>
#include <unordered_map>

#include "codes/factory.h"
#include "crossbar/area_model.h"
#include "crossbar/contact_groups.h"
#include "decoder/decoder_design.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"
#include "yield/analytic_yield.h"
#include "yield/yield_sweep.h"

namespace nwdec::core {

// Everything derivable from (code_type, radix, full_length, nanowires)
// alone; one entry serves every (sigma, defects, trials) grid point. The
// members reference each other (design copies the code, the context
// references the design and the shared plan), so entries live behind
// unique_ptr and are immutable after construction.
struct sweep_engine::prepared_design {
  codes::code code;
  decoder::decoder_design design;
  const crossbar::contact_group_plan* plan;
  // Built lazily by prepare_locked on the first Monte-Carlo request for
  // this design: analytic-only sweeps never pay for the O(N*M) engine
  // tables.
  std::unique_ptr<yield::trial_context> context;
  crossbar::layer_geometry geometry;
  crossbar::area_breakdown area;

  prepared_design(codes::code built, std::size_t nanowires,
                  const device::technology& tech,
                  const crossbar::contact_group_plan& shared_plan,
                  const crossbar::crossbar_spec& point_spec)
      : code(std::move(built)),
        design(code, nanowires, tech),
        plan(&shared_plan),
        geometry(crossbar::derive_layer_geometry(point_spec, tech, code.length,
                                                 shared_plan.group_count)),
        area(crossbar::estimate_area(geometry, tech)) {}
};

std::vector<sweep_request> sweep_axes::expand() const {
  NWDEC_EXPECTS(!designs.empty(), "sweep axes need at least one design point");
  const std::vector<std::size_t> nanowire_axis =
      nanowires.empty() ? std::vector<std::size_t>{0} : nanowires;
  const std::vector<double> sigma_axis =
      sigmas_vt.empty() ? std::vector<double>{-1.0} : sigmas_vt;
  const std::vector<std::optional<fab::defect_params>> defect_axis =
      defects.empty() ? std::vector<std::optional<fab::defect_params>>{
                            std::nullopt}
                      : defects;

  std::vector<sweep_request> out;
  out.reserve(designs.size() * nanowire_axis.size() * sigma_axis.size() *
              defect_axis.size());
  for (const design_point& design : designs) {
    for (const std::size_t n : nanowire_axis) {
      for (const double sigma : sigma_axis) {
        for (const std::optional<fab::defect_params>& defect : defect_axis) {
          sweep_request request;
          request.design = design;
          request.nanowires = n;
          request.sigma_vt = sigma;
          request.mc_trials = mc_trials;
          request.defects = defect;
          out.push_back(request);
        }
      }
    }
  }
  return out;
}

// See the header for the full fingerprint contract: a pure function of the
// point's parameters, so a point's Monte-Carlo run key -- from_counter(seed,
// fingerprint) -- never depends on the point's grid position or on what
// the other grid points are. Two identical requests therefore produce
// identical entries (the memoizable semantics service::result_store keys on).
std::uint64_t fingerprint(const sweep_request& request) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  // counter_seed is the raw splitmix64 cascade: same values from_counter
  // seeds streams with, without paying for an engine-state initialization
  // per mix step (this runs once per grid point on every sweep).
  const auto mix_in = [&h](std::uint64_t v) {
    h = rng::counter_seed(h, v);
  };
  const auto mix_double = [&mix_in](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    mix_in(bits);
  };
  mix_in(static_cast<std::uint64_t>(request.design.type));
  mix_in(request.design.radix);
  mix_in(request.design.length);
  mix_in(request.nanowires);
  mix_in(request.mc_trials);
  mix_double(request.sigma_vt);
  mix_in(request.defects.has_value() ? 1 : 0);
  if (request.defects.has_value()) {
    mix_double(request.defects->broken_probability);
    mix_double(request.defects->bridge_probability);
  }
  return h;
}

namespace {

// Field-wise equality of resolved requests, used to tell a genuine
// fingerprint collision (a bug worth failing loudly on) from the same point
// appearing twice in one grid (benign).
bool same_request(const sweep_request& a, const sweep_request& b) {
  if (a.design.type != b.design.type || a.design.radix != b.design.radix ||
      a.design.length != b.design.length || a.nanowires != b.nanowires ||
      a.sigma_vt != b.sigma_vt || a.mc_trials != b.mc_trials ||
      a.defects.has_value() != b.defects.has_value()) {
    return false;
  }
  if (a.defects.has_value()) {
    return a.defects->broken_probability == b.defects->broken_probability &&
           a.defects->bridge_probability == b.defects->bridge_probability;
  }
  return true;
}

}  // namespace

sweep_engine::sweep_engine(crossbar::crossbar_spec spec,
                           device::technology tech)
    : spec_(spec), tech_(tech) {
  spec_.validate();
  tech_.validate();
}

sweep_engine::~sweep_engine() = default;

const sweep_engine::prepared_design& sweep_engine::prepare_locked(
    const sweep_request& request) const {
  const design_key key{static_cast<int>(request.design.type),
                       request.design.radix, request.design.length,
                       request.nanowires};
  prepared_design* entry = nullptr;
  const auto found = designs_.find(key);
  if (found != designs_.end()) {
    ++stats_.design_reuses;
    entry = found->second.get();
  } else {
    codes::code code = codes::make_code(request.design.type,
                                        request.design.radix,
                                        request.design.length);
    const plan_key shared{request.nanowires, code.size()};
    auto plan_it = plans_.find(shared);
    if (plan_it == plans_.end()) {
      plan_it = plans_
                    .emplace(shared,
                             std::make_unique<crossbar::contact_group_plan>(
                                 crossbar::plan_contact_groups(
                                     request.nanowires, code.size(), tech_)))
                    .first;
      ++stats_.plans_built;
    } else {
      ++stats_.plan_reuses;
    }

    crossbar::crossbar_spec point_spec = spec_;
    point_spec.nanowires_per_half_cave = request.nanowires;
    entry = designs_
                .emplace(key, std::make_unique<prepared_design>(
                                  std::move(code), request.nanowires, tech_,
                                  *plan_it->second, point_spec))
                .first->second.get();
    ++stats_.designs_built;
  }
  if (request.mc_trials > 0 && entry->context == nullptr) {
    entry->context = std::make_unique<yield::trial_context>(entry->design,
                                                            *entry->plan);
  }
  return *entry;
}

sweep_engine_report sweep_engine::run(const std::vector<sweep_request>& points,
                                      const sweep_engine_options& options)
    const {
  NWDEC_EXPECTS(!points.empty(),
                "a design-space sweep needs at least one grid point");

  std::size_t budget = options.threads;
  if (budget == 0) {
    budget = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const std::size_t workers = std::min(budget, points.size());
  const std::size_t inner_threads = std::max<std::size_t>(1, budget / workers);

  // Prepare phase: resolve platform defaults and bind every point to its
  // cache entry. All cache mutation happens here, under the lock; bad grid
  // points fail fast with the factory's diagnostics before any thread
  // starts.
  std::vector<sweep_request> resolved(points);
  std::vector<const prepared_design*> prepared(points.size(), nullptr);
  std::vector<std::uint64_t> fingerprints(points.size(), 0);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::unordered_map<std::uint64_t, std::size_t> seen;
    seen.reserve(points.size());
    for (std::size_t k = 0; k < resolved.size(); ++k) {
      sweep_request& request = resolved[k];
      request = resolve(request);
      if (request.defects.has_value()) request.defects->validate();
      prepared[k] = &prepare_locked(request);
      // Fingerprint uniqueness check (see the fingerprint() contract):
      // distinct resolved points must never alias one run key / cache slot.
      fingerprints[k] = fingerprint(request);
      const auto [it, inserted] = seen.emplace(fingerprints[k], k);
      NWDEC_ENSURES(inserted || same_request(resolved[it->second], request),
                    "fingerprint collision between distinct grid points");
    }
  }

  // Evaluation phase: shard points across workers through an atomic cursor.
  // Slot k belongs to point k alone and its Monte-Carlo run key depends
  // only on (seed, the point itself), so the result is independent of the
  // sharding, the grid order, and the other grid points.
  std::vector<sweep_engine_entry> entries(points.size());
  std::vector<std::exception_ptr> failures(points.size());
  std::atomic<std::size_t> cursor{0};

  const auto evaluate_one = [&](std::size_t k) {
    const sweep_request& request = resolved[k];
    const prepared_design& p = *prepared[k];
    sweep_engine_entry& entry = entries[k];
    entry.request = request;

    design_evaluation& e = entry.evaluation;
    e.point = request.design;
    e.code_space = p.code.size();
    e.fabrication_steps = p.design.fabrication_complexity();
    e.average_variability = p.design.average_variability_sigma_units();
    e.contact_groups = p.plan->group_count;
    const yield::yield_result yields =
        yield::analytic_yield(p.design, *p.plan, request.sigma_vt);
    e.expected_discarded = yields.expected_discarded;
    e.nanowire_yield = yields.nanowire_yield;
    e.crosspoint_yield = yields.crosspoint_yield;
    e.effective_bits = yield::effective_bits(yields, spec_.raw_bits);
    e.total_area_nm2 = p.area.total_nm2;
    e.bit_area_nm2 = crossbar::bit_area_nm2(p.area, e.effective_bits);

    if (request.mc_trials > 0) {
      yield::mc_options mc;
      mc.mode = options.mode;
      mc.threads = inner_threads;
      mc.block_size = options.mc_block_size;
      mc.defects = request.defects;
      mc.sigma_vt = request.sigma_vt;
      const std::uint64_t run_key =
          rng::from_counter(options.seed, fingerprints[k]).seed();

      const auto started = std::chrono::steady_clock::now();
      yield::mc_run_state state;
      if (options.mc_resume) {
        // Seed the accumulator from persisted progress. The per-trial
        // streams are counter-based, so the state at any total is
        // bit-identical whether the prefix ran here or in an earlier
        // process -- resuming only moves where the spend starts.
        if (const std::optional<mc_resume_point> seed =
                options.mc_resume(request)) {
          state = yield::mc_run_state::from_moments(seed->trials, seed->mean,
                                                    seed->m2);
        }
      }
      yield::mc_yield_result result = yield::mc_result_from_state(state);
      if (!options.mc_budget) {
        if (state.trials() < request.mc_trials) {
          mc.trials = request.mc_trials - state.trials();
          result = yield::monte_carlo_yield_resume(*p.context, mc, run_key,
                                                   state);
        }
      } else {
        // Batched leg: the hook sizes each batch from the running Wilson
        // estimate; request.mc_trials caps the schedule. The per-trial
        // streams are the same as the fixed path's, so a schedule summing
        // to T is bit-identical to a fixed T-trial run.
        while (state.trials() < request.mc_trials) {
          mc_budget_status status;
          status.trials_done = state.trials();
          status.nanowire_yield = state.mean();
          status.wilson_half_width = wilson_half_width(
              state.mean() * static_cast<double>(state.trials()),
              static_cast<double>(state.trials()));
          std::size_t batch = options.mc_budget(request, status);
          if (batch == 0) break;
          batch = std::min(batch, request.mc_trials - state.trials());
          mc.trials = batch;
          result = yield::monte_carlo_yield_resume(*p.context, mc, run_key,
                                                   state);
        }
      }
      const auto finished = std::chrono::steady_clock::now();

      if (state.trials() > 0) {
        e.has_monte_carlo = true;
        e.mc_nanowire_yield = result.nanowire_yield;
        e.mc_ci_low = result.ci.low;
        e.mc_ci_high = result.ci.high;
        entry.mc_trials_used = state.trials();
        entry.mc_m2 = state.per_trial_yield.sum_squared_deviations();
        entry.mc_seconds =
            std::chrono::duration<double>(finished - started).count();
        entry.mc_trials_per_second =
            entry.mc_seconds > 0.0
                ? static_cast<double>(state.trials()) / entry.mc_seconds
                : 0.0;
      }
    }
  };

  const auto drain = [&]() {
    for (std::size_t k = cursor.fetch_add(1); k < resolved.size();
         k = cursor.fetch_add(1)) {
      try {
        evaluate_one(k);
      } catch (...) {
        failures[k] = std::current_exception();
      }
    }
  };

  if (workers <= 1) {
    drain();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(drain);
    for (std::thread& worker : pool) worker.join();
  }
  for (const std::exception_ptr& failure : failures) {
    if (failure) std::rethrow_exception(failure);
  }

  sweep_engine_report report;
  report.mode = options.mode;
  report.threads = workers;
  report.seed = options.seed;
  report.raw_bits = spec_.raw_bits;
  report.default_nanowires = spec_.nanowires_per_half_cave;
  report.default_sigma_vt = tech_.sigma_vt;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    report.cache = stats_;
  }
  report.entries = std::move(entries);
  return report;
}

sweep_engine_report sweep_engine::run(const sweep_axes& axes,
                                      const sweep_engine_options& options)
    const {
  return run(axes.expand(), options);
}

sweep_cache_stats sweep_engine::cache_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

sweep_request sweep_engine::resolve(sweep_request request) const {
  if (request.nanowires == 0) {
    request.nanowires = spec_.nanowires_per_half_cave;
  }
  if (request.sigma_vt < 0.0) request.sigma_vt = tech_.sigma_vt;
  return request;
}

namespace {

const char* mode_name(yield::mc_mode mode) {
  return mode == yield::mc_mode::window ? "window" : "operational";
}

// Shortest representation that parses back to the same double, so the CSV
// round-trips exactly through strtod.
std::string format_full(double value) {
  char buffer[32];
  const std::to_chars_result result =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

}  // namespace

std::string to_json(const sweep_engine_report& report) {
  json_writer json;
  json.begin_object()
      .field("bench", "sweep_engine")
      .field("mode", mode_name(report.mode))
      .field("threads", report.threads)
      .field("seed", report.seed)
      .field("raw_bits", report.raw_bits)
      .field("default_nanowires", report.default_nanowires)
      .field("default_sigma_vt", report.default_sigma_vt);
  json.key("cache")
      .begin_object()
      .field("designs_built", report.cache.designs_built)
      .field("design_reuses", report.cache.design_reuses)
      .field("plans_built", report.cache.plans_built)
      .field("plan_reuses", report.cache.plan_reuses)
      .end_object();
  json.key("points").begin_array();
  for (const sweep_engine_entry& entry : report.entries) {
    const design_evaluation& e = entry.evaluation;
    const fab::defect_params defects =
        entry.request.defects.value_or(fab::defect_params{});
    json.begin_object()
        .field("code", codes::code_type_name(entry.request.design.type))
        .field("radix", entry.request.design.radix)
        .field("length", entry.request.design.length)
        .field("nanowires", entry.request.nanowires)
        .field("sigma_vt", entry.request.sigma_vt)
        .field("mc_trials", entry.request.mc_trials)
        .field("broken_probability", defects.broken_probability)
        .field("bridge_probability", defects.bridge_probability)
        .field("omega", e.code_space)
        .field("phi", e.fabrication_steps)
        .field("average_variability", e.average_variability)
        .field("contact_groups", e.contact_groups)
        .field("expected_discarded", e.expected_discarded)
        .field("nanowire_yield", e.nanowire_yield)
        .field("crosspoint_yield", e.crosspoint_yield)
        .field("effective_bits", e.effective_bits)
        .field("total_area_nm2", e.total_area_nm2)
        .field("bit_area_nm2", e.bit_area_nm2);
    if (e.has_monte_carlo) {
      // Wilson bounds and the proportion standard error are derived from
      // the stored (mean, trials_used) payload alone, so the block stays a
      // pure function of the cached result.
      const double trials_used = static_cast<double>(entry.mc_trials_used);
      const interval wilson =
          wilson_interval(e.mc_nanowire_yield * trials_used, trials_used);
      json.field("mc_nanowire_yield", e.mc_nanowire_yield)
          .field("mc_ci_low", e.mc_ci_low)
          .field("mc_ci_high", e.mc_ci_high)
          .field("mc_wilson_low", wilson.low)
          .field("mc_wilson_high", wilson.high)
          .field("mc_stderr",
                 proportion_stderr(e.mc_nanowire_yield, trials_used))
          .field("mc_trials_used", entry.mc_trials_used)
          .field("mc_seconds", entry.mc_seconds)
          .field("mc_trials_per_second", entry.mc_trials_per_second);
    }
    json.end_object();
  }
  return json.end_array().end_object().str();
}

std::string to_csv(const sweep_engine_report& report) {
  const std::vector<std::string> header = {
      "code",           "radix",
      "length",         "nanowires",
      "sigma_vt",       "mc_trials",
      "broken_probability", "bridge_probability",
      "omega",          "phi",
      "contact_groups", "expected_discarded",
      "nanowire_yield", "crosspoint_yield",
      "effective_bits", "total_area_nm2",
      "bit_area_nm2",   "mc_nanowire_yield",
      "mc_ci_low",      "mc_ci_high",
      "mc_trials_used"};

  std::string out = csv_row(header);
  for (const sweep_engine_entry& entry : report.entries) {
    const design_evaluation& e = entry.evaluation;
    const fab::defect_params defects =
        entry.request.defects.value_or(fab::defect_params{});
    std::vector<std::string> row = {
        codes::code_type_name(entry.request.design.type),
        std::to_string(entry.request.design.radix),
        std::to_string(entry.request.design.length),
        std::to_string(entry.request.nanowires),
        format_full(entry.request.sigma_vt),
        std::to_string(entry.request.mc_trials),
        format_full(defects.broken_probability),
        format_full(defects.bridge_probability),
        std::to_string(e.code_space),
        std::to_string(e.fabrication_steps),
        std::to_string(e.contact_groups),
        format_full(e.expected_discarded),
        format_full(e.nanowire_yield),
        format_full(e.crosspoint_yield),
        format_full(e.effective_bits),
        format_full(e.total_area_nm2),
        format_full(e.bit_area_nm2),
        e.has_monte_carlo ? format_full(e.mc_nanowire_yield) : "",
        e.has_monte_carlo ? format_full(e.mc_ci_low) : "",
        e.has_monte_carlo ? format_full(e.mc_ci_high) : "",
        e.has_monte_carlo ? std::to_string(entry.mc_trials_used) : ""};
    out += csv_row(row);
  }
  return out;
}

}  // namespace nwdec::core
