// design_explorer: the top-level entry point of the library.
//
// Given the crossbar specification and the technology, the explorer
// evaluates decoder design points end to end -- code construction, decoder
// matrices, contact plan, analytic yield, area, and optionally a
// Monte-Carlo cross-check -- and ranks candidates, reproducing the
// "optimizing the decoder parameters" study of Sec. 6.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/design_point.h"
#include "crossbar/geometry.h"
#include "device/tech_params.h"
#include "util/rng.h"

namespace nwdec::core {

/// Evaluates and ranks decoder design points on a fixed platform.
class design_explorer {
 public:
  design_explorer(crossbar::crossbar_spec spec, device::technology tech);

  /// The platform.
  const crossbar::crossbar_spec& spec() const { return spec_; }
  const device::technology& tech() const { return tech_; }

  /// Full evaluation of one design point. When `mc_trials` > 0 a
  /// Monte-Carlo run (operational decode criterion) is attached, seeded
  /// from `seed`. Runs through core::sweep_engine as a one-point grid, so
  /// evaluate(p) is bit-identical to sweep({p}).
  design_evaluation evaluate(const design_point& point,
                             std::size_t mc_trials = 0,
                             std::uint64_t seed = 1) const;

  /// Evaluates every point of a grid through core::sweep_engine: design
  /// points are sharded across `threads` workers (0 = all cores) over
  /// cached codes, decoder designs, contact plans, and trial contexts.
  /// Each point's Monte-Carlo leg is seeded from rng::from_counter(seed,
  /// point-fingerprint) -- a pure function of the point itself -- so
  /// results are bit-identical for any thread count and grid order, and
  /// attaching or omitting Monte-Carlo on one point never shifts the
  /// streams of the others.
  std::vector<design_evaluation> sweep(
      const std::vector<design_point>& points, std::size_t mc_trials = 0,
      std::uint64_t seed = 1, std::size_t threads = 0) const;

  /// The evaluation with the smallest bit area (the paper's headline
  /// optimization target); `evaluations` must not be empty.
  static const design_evaluation& best_bit_area(
      const std::vector<design_evaluation>& evaluations);

 private:
  crossbar::crossbar_spec spec_;
  device::technology tech_;
};

}  // namespace nwdec::core
