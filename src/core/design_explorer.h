// design_explorer: the top-level entry point of the library.
//
// Given the crossbar specification and the technology, the explorer
// evaluates decoder design points end to end -- code construction, decoder
// matrices, contact plan, analytic yield, area, and optionally a
// Monte-Carlo cross-check -- and ranks candidates, reproducing the
// "optimizing the decoder parameters" study of Sec. 6.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/design_point.h"
#include "crossbar/geometry.h"
#include "device/tech_params.h"
#include "util/rng.h"

namespace nwdec::core {

/// Evaluates and ranks decoder design points on a fixed platform.
class design_explorer {
 public:
  design_explorer(crossbar::crossbar_spec spec, device::technology tech);

  /// The platform.
  const crossbar::crossbar_spec& spec() const { return spec_; }
  const device::technology& tech() const { return tech_; }

  /// Full evaluation of one design point. When `mc_trials` > 0 a
  /// Monte-Carlo run (operational decode criterion) is attached, seeded
  /// from `seed`.
  design_evaluation evaluate(const design_point& point,
                             std::size_t mc_trials = 0,
                             std::uint64_t seed = 1) const;

  /// Evaluates every point of a grid.
  std::vector<design_evaluation> sweep(
      const std::vector<design_point>& points, std::size_t mc_trials = 0,
      std::uint64_t seed = 1) const;

  /// The evaluation with the smallest bit area (the paper's headline
  /// optimization target); `evaluations` must not be empty.
  static const design_evaluation& best_bit_area(
      const std::vector<design_evaluation>& evaluations);

 private:
  crossbar::crossbar_spec spec_;
  device::technology tech_;
};

}  // namespace nwdec::core
