#include "core/experiments.h"

#include <cmath>

#include "codes/factory.h"
#include "decoder/decoder_design.h"
#include "device/tech_params.h"
#include "util/error.h"

namespace nwdec::core {

std::vector<fig5_row> run_fig5(std::size_t nanowires,
                               std::size_t full_length) {
  const device::technology tech = device::paper_technology();
  std::vector<fig5_row> rows;
  for (const unsigned radix : {2u, 3u, 4u}) {
    const decoder::decoder_design tree(
        codes::make_code(codes::code_type::tree, radix, full_length),
        nanowires, tech);
    const decoder::decoder_design gray(
        codes::make_code(codes::code_type::gray, radix, full_length),
        nanowires, tech);
    fig5_row row;
    row.radix = radix;
    row.tree_phi = tree.fabrication_complexity();
    row.gray_phi = gray.fabrication_complexity();
    row.gray_saving_percent =
        100.0 * (static_cast<double>(row.tree_phi) -
                 static_cast<double>(row.gray_phi)) /
        static_cast<double>(row.tree_phi);
    rows.push_back(row);
  }
  return rows;
}

std::vector<fig6_surface> run_fig6(std::size_t nanowires) {
  const device::technology tech = device::paper_technology();
  std::vector<fig6_surface> out;
  for (const std::size_t length : {std::size_t{8}, std::size_t{10}}) {
    for (const codes::code_type type :
         {codes::code_type::tree, codes::code_type::gray,
          codes::code_type::balanced_gray}) {
      const decoder::decoder_design design(
          codes::make_code(type, 2, length), nanowires, tech);
      fig6_surface surface;
      surface.type = type;
      surface.length = length;
      surface.sqrt_normalized = design.dose_counts().map<double>(
          [](std::size_t nu) { return std::sqrt(static_cast<double>(nu)); });
      surface.average_variability = design.average_variability_sigma_units();
      surface.average_sqrt_level =
          surface.sqrt_normalized.sum() /
          static_cast<double>(surface.sqrt_normalized.size());
      surface.worst_digit_level = surface.sqrt_normalized.max();
      out.push_back(std::move(surface));
    }
  }
  return out;
}

std::vector<design_point> yield_grid() {
  std::vector<design_point> grid;
  for (const codes::code_type type :
       {codes::code_type::tree, codes::code_type::gray,
        codes::code_type::balanced_gray}) {
    for (const std::size_t length :
         {std::size_t{6}, std::size_t{8}, std::size_t{10}}) {
      grid.push_back(design_point{type, 2, length});
    }
  }
  for (const codes::code_type type :
       {codes::code_type::hot, codes::code_type::arranged_hot}) {
    for (const std::size_t length : {std::size_t{4}, std::size_t{6},
                                     std::size_t{8}, std::size_t{10}}) {
      grid.push_back(design_point{type, 2, length});
    }
  }
  return grid;
}

std::vector<design_point> fig7_grid() {
  std::vector<design_point> grid;
  for (const codes::code_type type :
       {codes::code_type::tree, codes::code_type::balanced_gray}) {
    for (const std::size_t length :
         {std::size_t{6}, std::size_t{8}, std::size_t{10}}) {
      grid.push_back(design_point{type, 2, length});
    }
  }
  for (const codes::code_type type :
       {codes::code_type::hot, codes::code_type::arranged_hot}) {
    for (const std::size_t length :
         {std::size_t{4}, std::size_t{6}, std::size_t{8}}) {
      grid.push_back(design_point{type, 2, length});
    }
  }
  return grid;
}

std::vector<design_evaluation> run_yield_experiment(
    const design_explorer& explorer, const std::vector<design_point>& grid,
    std::size_t mc_trials, std::uint64_t seed, std::size_t threads) {
  return explorer.sweep(grid, mc_trials, seed, threads);
}

const design_evaluation& find_evaluation(
    const std::vector<design_evaluation>& evaluations, codes::code_type type,
    std::size_t length) {
  for (const design_evaluation& evaluation : evaluations) {
    if (evaluation.point.type == type && evaluation.point.length == length) {
      return evaluation;
    }
  }
  throw not_found_error("design point " +
                        codes::code_type_name(type) + "-" +
                        std::to_string(length) + " not in the result set");
}

}  // namespace nwdec::core
