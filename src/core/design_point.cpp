#include "core/design_point.h"

namespace nwdec::core {

std::string design_point::label() const {
  std::string out = codes::code_type_name(type);
  if (radix != 2) out += std::to_string(radix);
  out += "-";
  out += std::to_string(length);
  return out;
}

}  // namespace nwdec::core
