#include "core/design_explorer.h"

#include <algorithm>

#include "core/sweep_engine.h"
#include "util/error.h"

namespace nwdec::core {

namespace {

std::vector<design_evaluation> run_through_engine(
    const crossbar::crossbar_spec& spec, const device::technology& tech,
    const std::vector<design_point>& points, std::size_t mc_trials,
    std::uint64_t seed, std::size_t threads) {
  if (points.empty()) return {};
  const sweep_engine engine(spec, tech);
  std::vector<sweep_request> requests(points.size());
  for (std::size_t k = 0; k < points.size(); ++k) {
    requests[k].design = points[k];
    requests[k].mc_trials = mc_trials;
  }
  sweep_engine_options options;
  options.threads = threads;
  options.seed = seed;
  options.mode = yield::mc_mode::operational;
  sweep_engine_report report = engine.run(requests, options);

  std::vector<design_evaluation> out;
  out.reserve(report.entries.size());
  for (sweep_engine_entry& entry : report.entries) {
    out.push_back(std::move(entry.evaluation));
  }
  return out;
}

}  // namespace

design_explorer::design_explorer(crossbar::crossbar_spec spec,
                                 device::technology tech)
    : spec_(spec), tech_(tech) {
  spec_.validate();
  tech_.validate();
}

design_evaluation design_explorer::evaluate(const design_point& point,
                                            std::size_t mc_trials,
                                            std::uint64_t seed) const {
  // A one-point grid: the Monte-Carlo leg gets the whole hardware thread
  // budget (results are thread-count independent either way).
  return run_through_engine(spec_, tech_, {point}, mc_trials, seed, 0)
      .front();
}

std::vector<design_evaluation> design_explorer::sweep(
    const std::vector<design_point>& points, std::size_t mc_trials,
    std::uint64_t seed, std::size_t threads) const {
  return run_through_engine(spec_, tech_, points, mc_trials, seed, threads);
}

const design_evaluation& design_explorer::best_bit_area(
    const std::vector<design_evaluation>& evaluations) {
  NWDEC_EXPECTS(!evaluations.empty(), "nothing to rank");
  return *std::min_element(evaluations.begin(), evaluations.end(),
                           [](const design_evaluation& a,
                              const design_evaluation& b) {
                             return a.bit_area_nm2 < b.bit_area_nm2;
                           });
}

}  // namespace nwdec::core
