#include "core/design_explorer.h"

#include <algorithm>

#include "codes/factory.h"
#include "crossbar/area_model.h"
#include "crossbar/contact_groups.h"
#include "decoder/decoder_design.h"
#include "util/error.h"
#include "yield/analytic_yield.h"
#include "yield/monte_carlo_yield.h"

namespace nwdec::core {

design_explorer::design_explorer(crossbar::crossbar_spec spec,
                                 device::technology tech)
    : spec_(spec), tech_(tech) {
  spec_.validate();
  tech_.validate();
}

design_evaluation design_explorer::evaluate(const design_point& point,
                                            std::size_t mc_trials,
                                            std::uint64_t seed) const {
  const codes::code code =
      codes::make_code(point.type, point.radix, point.length);
  const decoder::decoder_design design(code, spec_.nanowires_per_half_cave,
                                       tech_);
  const crossbar::contact_group_plan plan = crossbar::plan_contact_groups(
      design.nanowire_count(), code.size(), tech_);
  const yield::yield_result yields = yield::analytic_yield(design, plan);
  const crossbar::layer_geometry geometry = crossbar::derive_layer_geometry(
      spec_, tech_, point.length, plan.group_count);
  const crossbar::area_breakdown area =
      crossbar::estimate_area(geometry, tech_);

  design_evaluation out;
  out.point = point;
  out.code_space = code.size();
  out.fabrication_steps = design.fabrication_complexity();
  out.average_variability = design.average_variability_sigma_units();
  out.contact_groups = plan.group_count;
  out.expected_discarded = yields.expected_discarded;
  out.nanowire_yield = yields.nanowire_yield;
  out.crosspoint_yield = yields.crosspoint_yield;
  out.effective_bits = yield::effective_bits(yields, spec_.raw_bits);
  out.total_area_nm2 = area.total_nm2;
  out.bit_area_nm2 = crossbar::bit_area_nm2(area, out.effective_bits);

  if (mc_trials > 0) {
    rng random(seed);
    // All available cores; the engine's counter-based trial streams make
    // the result independent of the thread count, so the evaluation stays
    // reproducible from the seed alone.
    yield::mc_options options;
    options.mode = yield::mc_mode::operational;
    options.trials = mc_trials;
    options.threads = 0;
    const yield::mc_yield_result mc =
        yield::monte_carlo_yield(design, plan, options, random);
    out.has_monte_carlo = true;
    out.mc_nanowire_yield = mc.nanowire_yield;
    out.mc_ci_low = mc.ci.low;
    out.mc_ci_high = mc.ci.high;
  }
  return out;
}

std::vector<design_evaluation> design_explorer::sweep(
    const std::vector<design_point>& points, std::size_t mc_trials,
    std::uint64_t seed) const {
  std::vector<design_evaluation> out;
  out.reserve(points.size());
  for (const design_point& point : points) {
    out.push_back(evaluate(point, mc_trials, seed));
  }
  return out;
}

const design_evaluation& design_explorer::best_bit_area(
    const std::vector<design_evaluation>& evaluations) {
  NWDEC_EXPECTS(!evaluations.empty(), "nothing to rank");
  return *std::min_element(evaluations.begin(), evaluations.end(),
                           [](const design_evaluation& a,
                              const design_evaluation& b) {
                             return a.bit_area_nm2 < b.bit_area_nm2;
                           });
}

}  // namespace nwdec::core
