// sweep_engine: the unified multithreaded design-space engine.
//
// The paper's headline study (Sec. 6) ranks decoder designs across code
// families and word lengths; the ROADMAP extends it to addressability-limit
// scans over the half-cave size N (Chee & Ling) and process-variability
// ablations. All of those are one shape of computation: a grid over
// (code_type, radix, full_length, nanowires, sigma_vt, defects, trials),
// each point needing the same expensive intermediates. The engine evaluates
// such grids once, in parallel, without deriving anything twice:
//
//   * Design points (not Monte-Carlo trials) are sharded across
//     std::thread workers through an atomic cursor. A point's Monte-Carlo
//     leg always uses the run key rng::from_counter(seed, fingerprint)
//     where the fingerprint is a pure function of the resolved request,
//     and the engine's per-trial streams are counter-based (PR 1) -- so
//     results are bit-identical for any thread count, invariant under
//     grid-point reordering, and never shifted by which other points exist
//     or whether they carry Monte-Carlo at all. (Corollary: two identical
//     requests produce identical entries.)
//   * Expensive intermediates are memoized in keyed caches that persist
//     across run() calls (the substrate for a long-running sweep service).
//
// Cache-key contract -- what may be reused when:
//   * built code + decoder_design + trial_context: keyed by
//     (code_type, radix, full_length, nanowires). Everything inside is
//     sigma-independent: the pattern, doping and dose-count matrices, the
//     V_T levels, and the context's drive/nominal/sqrt(nu) tables only
//     depend on the code and the technology *structure*, so one entry
//     serves every (sigma, defects, trials) point. The trial_context is
//     built lazily on the first Monte-Carlo request for the design
//     (analytic-only sweeps skip it); the per-layer geometry and area
//     breakdown ride along (they depend on (full_length, group_count,
//     nanowires) only).
//   * contact_group_plan: keyed by (nanowires, code_space). Code families
//     with equal Omega at equal N (e.g. TC/GC/BGC at one length) share one
//     plan -- the planner never looks at the arrangement.
//   * NOT cached across engines: anything downstream of the technology or
//     the crossbar spec's raw capacity; both are fixed per engine, so a
//     different platform needs a different engine.
// Per-point sigma is applied through the sigma overrides of
// yield::analytic_yield and yield::mc_options, which never touch the cached
// tables. The caches are guarded by a mutex during the prepare phase of
// run(); the evaluation phase reads only immutable entries, so concurrent
// run() calls on one engine are safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/design_point.h"
#include "crossbar/geometry.h"
#include "device/tech_params.h"
#include "fab/defects.h"
#include "yield/trial_context.h"

namespace nwdec::core {

/// One fully-specified grid point of a design-space sweep.
struct sweep_request {
  design_point design;
  /// Nanowires per half cave; 0 = the engine spec's default.
  std::size_t nanowires = 0;
  /// Process sigma in volts; negative = the engine technology's default
  /// (0 is a real value: a variability-free process).
  double sigma_vt = -1.0;
  /// Monte-Carlo trials at this point; 0 = analytic evaluation only.
  std::size_t mc_trials = 0;
  /// Structural defect injection for the Monte-Carlo leg, if any.
  std::optional<fab::defect_params> defects;
};

/// Axes of a rectangular grid; expand() yields the cartesian product with
/// designs as the slowest axis, then nanowires, then sigmas, then defects.
/// Empty optional axes mean "platform default".
struct sweep_axes {
  std::vector<design_point> designs;
  std::vector<std::size_t> nanowires;  ///< empty = {spec default}
  std::vector<double> sigmas_vt;       ///< empty = {tech default}
  std::vector<std::optional<fab::defect_params>> defects;  ///< empty = {none}
  std::size_t mc_trials = 0;           ///< applied to every point

  std::vector<sweep_request> expand() const;
};

/// Fingerprint of a fully-resolved request (nanowires and sigma defaults
/// filled in) -- the key of every result-level memoization layer.
///
/// Contract:
///   * Pure function of the point's parameters alone: (code type, radix,
///     length, nanowires, mc_trials, sigma_vt bits, defect presence and
///     rates). Never of grid position, engine state, or the other points.
///   * A point's Monte-Carlo run key is rng::from_counter(seed,
///     fingerprint(point)), so equal fingerprints mean equal results under
///     one (seed, mode) -- the memoizable semantics service::result_store
///     persists across processes. The mixing chain is a splitmix64 cascade
///     (util/rng.h): distinct points collide with probability ~2^-64 per
///     pair; run() asserts that the fingerprints of distinct resolved
///     points in one grid are in fact distinct, so a collision fails loudly
///     instead of silently aliasing two results.
///   * The value is part of the persisted cache-file format: changing the
///     mixing scheme invalidates existing caches (service::result_store
///     rejects them via its header check, it never misreads them).
std::uint64_t fingerprint(const sweep_request& request);

/// Progress snapshot handed to the Monte-Carlo budget hook after each batch
/// (and once before the first, with zero trials).
struct mc_budget_status {
  std::size_t trials_done = 0;
  double nanowire_yield = 0.0;     ///< running mean over trials_done
  /// Wilson CI half-width (z = 1.96) of the running estimate, treating each
  /// trial's yield fraction as one observation; 1.0 before any trial.
  double wilson_half_width = 1.0;
};

/// Per-point Monte-Carlo budget hook: returns the next batch size (0 =
/// stop). Must be a pure function of its arguments -- the engine calls it
/// concurrently from worker threads, and the determinism contract extends
/// to the batch schedule it produces (service::adaptive_budget builds the
/// CI-width stopping policy on this hook).
using mc_budget_fn =
    std::function<std::size_t(const sweep_request&, const mc_budget_status&)>;

/// Persisted progress of a point's Monte-Carlo leg: the resumable
/// accumulator moments (yield::mc_run_state::from_moments). By the resume
/// contract the state at any trial total is bit-identical whether those
/// trials ran in one process or across restarts, so seeding a run from a
/// persisted point never changes the bits at a given total -- only where
/// the evaluation starts paying.
struct mc_resume_point {
  std::size_t trials = 0;  ///< trials already consumed (the resume index)
  double mean = 0.0;       ///< running nanowire-yield mean over `trials`
  double m2 = 0.0;         ///< Welford M2 accumulator at `trials`
};

/// Per-point resume hook: the persisted progress to continue a point's
/// Monte-Carlo leg from (nullopt = start cold). Must be a pure function of
/// its argument -- the engine calls it concurrently from worker threads.
/// The sweep service's cross-restart top-up feeds cached (mean, trials, M2)
/// through this hook so a tighter CI target resumes instead of recomputing.
using mc_resume_fn =
    std::function<std::optional<mc_resume_point>(const sweep_request&)>;

/// Engine run configuration.
struct sweep_engine_options {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). Design points
  /// are sharded across workers; when the grid is smaller than the budget,
  /// the spare threads shard each point's Monte-Carlo trials instead.
  /// Results are bit-identical regardless of the value.
  std::size_t threads = 0;
  std::uint64_t seed = 1;
  yield::mc_mode mode = yield::mc_mode::operational;
  /// Trials per batched-kernel block for every point's Monte-Carlo leg
  /// (yield::mc_options::block_size): 0 = the kernel default, 1 = the
  /// scalar per-trial oracle path. Bit-identical results either way; this
  /// is a performance knob benches use to compare the two kernels.
  std::size_t mc_block_size = 0;
  /// When set, each point's Monte-Carlo leg runs in batches sized by this
  /// hook (request.mc_trials stays the hard cap); unset = one fixed batch
  /// of request.mc_trials. Batched and fixed runs over the same total are
  /// bit-identical (yield::mc_run_state contract).
  mc_budget_fn mc_budget;
  /// When set, each point's Monte-Carlo leg starts from the returned
  /// persisted state instead of trial zero (request.mc_trials stays the
  /// hard cap on the *total*, resumed trials included). Resumed and cold
  /// runs reaching the same total are bit-identical; a point already at or
  /// beyond every budget decision re-emits its summary without running a
  /// trial.
  mc_resume_fn mc_resume;
};

/// One evaluated grid point.
struct sweep_engine_entry {
  sweep_request request;          ///< defaults resolved (nanowires, sigma)
  design_evaluation evaluation;   ///< analytic block always, MC when asked
  /// Trials actually consumed: request.mc_trials for fixed budgets, the
  /// batch-schedule total under an mc_budget hook. Resumed trials count
  /// (this is the total the payload describes, not this run's spend).
  std::size_t mc_trials_used = 0;
  /// Welford M2 accumulator at mc_trials_used -- with (mean, trials) the
  /// full resumable state of the estimator, persisted by the result store
  /// so a later request can top the point up instead of recomputing.
  double mc_m2 = 0.0;
  double mc_seconds = 0.0;
  double mc_trials_per_second = 0.0;
};

/// How much work the keyed caches saved during run() calls.
struct sweep_cache_stats {
  std::size_t designs_built = 0;  ///< (code, design, context) constructions
  std::size_t design_reuses = 0;  ///< points served by an existing entry
  std::size_t plans_built = 0;
  std::size_t plan_reuses = 0;
};

/// A completed sweep: entries in grid order plus everything needed to
/// reproduce the run.
struct sweep_engine_report {
  yield::mc_mode mode = yield::mc_mode::operational;
  std::size_t threads = 1;       ///< resolved worker count
  std::uint64_t seed = 0;
  std::size_t raw_bits = 0;
  std::size_t default_nanowires = 0;
  double default_sigma_vt = 0.0;
  sweep_cache_stats cache;       ///< cumulative over the engine's lifetime
  std::vector<sweep_engine_entry> entries;
};

/// Evaluates design-space grids on a fixed platform with context caching.
class sweep_engine {
 public:
  sweep_engine(crossbar::crossbar_spec spec, device::technology tech);
  ~sweep_engine();
  sweep_engine(const sweep_engine&) = delete;
  sweep_engine& operator=(const sweep_engine&) = delete;

  const crossbar::crossbar_spec& spec() const { return spec_; }
  const device::technology& tech() const { return tech_; }

  /// Evaluates every point of the grid; entries come back in grid order.
  /// Analytic results are deterministic; Monte-Carlo results depend only on
  /// (options.seed, the resolved point parameters) -- see the header
  /// comment for the full determinism contract.
  sweep_engine_report run(const std::vector<sweep_request>& points,
                          const sweep_engine_options& options = {}) const;
  sweep_engine_report run(const sweep_axes& axes,
                          const sweep_engine_options& options = {}) const;

  /// Cumulative cache counters over the engine's lifetime (also embedded in
  /// every report); the sweep service's stats endpoint reads this.
  sweep_cache_stats cache_stats() const;

  /// Fills the platform defaults into a request (nanowires == 0 -> the
  /// spec's half-cave size, sigma < 0 -> the technology's sigma_vt) -- the
  /// exact resolution run() applies before evaluating, exposed so
  /// result-level memoization layers fingerprint the same request the
  /// engine computes.
  sweep_request resolve(sweep_request request) const;

 private:
  struct prepared_design;
  using design_key = std::tuple<int, unsigned, std::size_t, std::size_t>;
  using plan_key = std::pair<std::size_t, std::size_t>;

  /// Returns the cached entry for the key, building (and caching) it and
  /// its contact plan on a miss. Caller must hold mutex_.
  const prepared_design& prepare_locked(const sweep_request& request) const;

  crossbar::crossbar_spec spec_;
  device::technology tech_;

  mutable std::mutex mutex_;
  // Contexts reference the plans, so plans_ must outlive designs_
  // (members are destroyed in reverse declaration order).
  mutable std::map<plan_key, std::unique_ptr<crossbar::contact_group_plan>>
      plans_;
  mutable std::map<design_key, std::unique_ptr<prepared_design>> designs_;
  mutable sweep_cache_stats stats_;
};

/// Serializes a report as a JSON document (stable key order: run metadata,
/// cache stats, then one object per grid point) -- the format of the
/// nwdec_sweep CLI and the CI bench-trajectory artifact.
std::string to_json(const sweep_engine_report& report);

/// Serializes a report as CSV, one row per grid point, with the
/// Monte-Carlo columns empty for analytic-only points.
std::string to_csv(const sweep_engine_report& report);

}  // namespace nwdec::core
