// Design points and their full evaluation: the paper's "decoder design"
// is the pair (code type, code length) -- plus the logic radix -- and the
// evaluation bundles every figure of merit the paper reports for it.
#pragma once

#include <cstddef>
#include <string>

#include "codes/code_space.h"

namespace nwdec::core {

/// One decoder design choice.
struct design_point {
  codes::code_type type = codes::code_type::tree;
  unsigned radix = 2;
  std::size_t length = 8;  ///< full code length M

  /// Short label like "BGC-10" (binary) or "GC3-8" (ternary).
  std::string label() const;
};

/// Everything the platform computes for one design point.
struct design_evaluation {
  design_point point;

  // Code / decoder metrics.
  std::size_t code_space = 0;          ///< Omega
  std::size_t fabrication_steps = 0;   ///< Phi
  double average_variability = 0.0;    ///< ||Sigma||_1 / (N*M), sigma_T^2 units

  // Contact plan.
  std::size_t contact_groups = 0;
  double expected_discarded = 0.0;

  // Analytic yield.
  double nanowire_yield = 0.0;    ///< Y
  double crosspoint_yield = 0.0;  ///< Y^2 (Fig. 7's quantity)
  double effective_bits = 0.0;    ///< D_EFF

  // Area.
  double total_area_nm2 = 0.0;
  double bit_area_nm2 = 0.0;  ///< Fig. 8's quantity

  // Optional Monte-Carlo cross-check (operational decode criterion).
  bool has_monte_carlo = false;
  double mc_nanowire_yield = 0.0;
  double mc_ci_low = 0.0;
  double mc_ci_high = 0.0;
};

}  // namespace nwdec::core
