// api::events -- the one renderer behind every view of a finished job.
//
// A done job's wire body ("cached"/"computed"[/"topped_up"] or
// "evaluations"/"cached", then "result": <payload>) is rendered in
// exactly one place so the synchronous response, the terminal `status`
// body, the `done` push event, and the SSE terminal frame can never
// drift: the acceptance contract is that the result payload a subscriber
// receives is byte-identical to the one `status {"wait": true}` returns.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "service/refine.h"
#include "service/sweep_service.h"
#include "util/json.h"

namespace nwdec::api {

/// The immutable result of a done job, decoupled from the scheduler's
/// bookkeeping records so event closures can capture it by value (the
/// payloads are shared_ptr-held and set exactly once at completion).
struct result_payload {
  std::string kind;  ///< "sweep" | "refine"
  std::shared_ptr<const service::sweep_response> sweep;
  std::shared_ptr<const service::refine_result> refined;
  /// True when the submitting sweep asked for a CI target: the wrapper
  /// then always reports the topped_up count (even when it is 0).
  bool report_topped_up = false;
};

/// Writes the provenance counters + "result" payload of a done job into
/// an already-open object scope.
void write_result_fields(json_writer& json, const result_payload& payload);

/// Renders `fill`'s fields as a compact object-body fragment: ","-led,
/// brace-free, newline-free -- ready to splice into an event line after
/// the envelope members. An empty object renders "".
std::string json_fragment(const std::function<void(json_writer&)>& fill);

}  // namespace nwdec::api
