// nwdec::api job model: every sweep/refine request the service accepts
// becomes a job with an id, a state, a priority, and progress -- whether
// the client waits for it synchronously (the legacy NDJSON behavior) or
// submits it asynchronously and fetches the result later.
//
// State machine:
//
//   queued ----> running ------------> done
//      |             |    \----------> failed
//      |             \--> cancelling -> cancelled | done | failed
//      |\---> cancelled               (cancel of a queued job)
//      \----> timed_out               (deadline expired; also reachable
//                                      from running/cancelling)
//
// cancelling is cooperative: the running evaluation observes the flag
// between refine probes / Monte-Carlo batches and aborts -- but an
// evaluation that completes first still finishes done (completion wins
// the race; the client asked to stop work, not to un-compute a result).
// timed_out is terminal: a queued job past its deadline never runs, a
// running job aborts at the next check.
//
// A job's `result` payload is a pure function of (service configuration,
// request): bit-identical whether it ran alone or batched with other
// jobs, at any worker count, over any transport (the sweep service's
// evaluation semantics carry the contract; only the provenance counters in
// the response wrapper depend on cache history and scheduling).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "service/refine.h"
#include "service/sweep_service.h"
#include "util/json.h"

namespace nwdec::api {

enum class job_state {
  queued,
  running,
  cancelling,  ///< running with a cancel request pending (cooperative)
  done,
  failed,
  cancelled,
  timed_out,  ///< the request's timeout_ms deadline expired
};

/// Wire name of a state ("queued", "running", ...).
const char* job_state_name(job_state state);

/// True for the states a job can never leave.
constexpr bool job_state_terminal(job_state state) {
  return state == job_state::done || state == job_state::failed ||
         state == job_state::cancelled || state == job_state::timed_out;
}

/// What cancel(id) accomplished.
enum class cancel_outcome {
  unknown,     ///< no such job (never submitted, or already forgotten)
  cancelled,   ///< the job was still queued and is now terminally cancelled
  cancelling,  ///< the job is running; it will stop at its next check
  finished,    ///< the job was already terminal (inspect() tells the state)
};

/// A point-in-time view of one job.
struct job_status {
  std::uint64_t id = 0;
  job_state state = job_state::queued;
  std::string kind;  ///< "sweep" | "refine"
  int priority = 0;
  /// Work units finished / total: sweep jobs count grid points (filled
  /// when the job completes), refine jobs count probes as they happen
  /// (total stays 0: bisection depth is data-dependent).
  std::size_t progress_done = 0;
  std::size_t progress_total = 0;
  std::string error;  ///< diagnostic of a failed job
};

/// Out-of-band span record of one job's execution: the `trace` object of
/// terminal `status` responses and the slow-request log. Everything here
/// observes scheduling and evaluation without steering either -- result
/// payloads stay pure functions of (config, request) while queue waits,
/// batch sizes, and span timings vary run to run.
struct job_trace {
  std::uint64_t trace_id = 0;  ///< minted at submit; unique per process
  bool ran = false;            ///< the job reached a worker (vs shed early)
  double queue_wait_seconds = 0.0;  ///< submit -> worker pickup
  double total_seconds = 0.0;       ///< submit -> terminal state
  std::size_t batch_jobs = 0;    ///< jobs coalesced into its evaluation
  std::size_t batch_points = 0;  ///< grid points across the whole batch
  /// Evaluation spans (sweep jobs: the batch's shared evaluation, or the
  /// solo rerun; refine jobs: engine_seconds = the refine wall).
  service::eval_trace spans;
};

/// Hex wire spelling of a trace id ("f07c19a2b4d3e581").
std::string format_trace_id(std::uint64_t trace_id);

/// A job snapshot plus, when the job is done, its result payload. The
/// payloads are shared immutable state (set once at completion), so a
/// snapshot is O(1) no matter how many grid points the job answered.
struct job_result {
  job_status status;
  json_value client_id;  ///< the submitting request's echoed "id"
  /// Exactly one of these is set once status.state == done, by kind.
  std::shared_ptr<const service::sweep_response> sweep;
  std::shared_ptr<const service::refine_result> refined;
  /// True when the submitting sweep asked for a CI target: the response
  /// wrapper then always reports the topped_up count.
  bool report_topped_up = false;
  job_trace trace;  ///< span record (trace_id is set from submission on)
};

/// Aggregate scheduler counters (the stats endpoint's "jobs" block; the
/// bench derives the cross-request coalescence ratio from the sweep
/// batch counters).
struct scheduler_stats {
  std::size_t submitted = 0;
  std::size_t completed = 0;  ///< reached done
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t timed_out = 0;  ///< deadlines that expired (queued or running)
  std::size_t shed = 0;       ///< submissions rejected by the queue bound
  /// Submissions answered by the request_id dedup window with an EXISTING
  /// job instead of a new one (retries after a reset land here).
  std::size_t deduplicated = 0;
  /// Sweeps answered inline from the store (every point a cache hit at
  /// sufficient provenance) without occupying a worker or allocating a
  /// job id -- store-aware admission.
  std::size_t answered_inline = 0;
  std::size_t queued = 0;   ///< currently waiting
  std::size_t running = 0;  ///< currently executing (cancelling included)
  /// Cross-request batching: every batch is one sweep_service evaluation
  /// coalescing the points of `sweep_jobs_batched / sweep_batches` jobs on
  /// average (1.0 = no concurrency to exploit).
  std::size_t sweep_batches = 0;
  std::size_t sweep_jobs_batched = 0;
};

}  // namespace nwdec::api
