// api::event_bus: per-job lifecycle event streams with bounded fan-out.
//
// Publishers (the job scheduler, under its own mutex) append events to a
// per-job stream; each event gets the stream's next monotonic sequence
// number (1, 2, 3, ... with no gaps -- subscribers detect loss by a gap,
// and the bus itself never creates one). Subscribers attach with
// subscribe(job, from_seq) and receive, in order: every already-published
// event with seq > from_seq (the replay -- this is how a reconnecting
// client resumes without missing anything), then live events as they are
// published.
//
// Slow consumers are evicted, never waited on: a subscriber whose bounded
// queue is full when an event arrives has its queued events dropped and
// replaced by a single closing
//   {"job": J, "seq": S, "event": "event_overflow",
//    "code": "event_overflow", "dropped": K}
// line, after which the subscription is closed -- the client resubscribes
// from its last processed sequence number and the replay fills the hole.
// Publishing therefore never blocks on any subscriber.
//
// Terminal events (done/failed/cancelled/timed_out) end a stream: the
// subscription closes once it has delivered one, and a subscribe() after
// the terminal was published replays up to and including it (the
// subscribe-after-terminal contract: a late or reconnecting client still
// gets the result payload). Terminal `done` bodies can be expensive (the
// full result payload), so publish_lazy defers rendering: the body
// closure runs immediately when live subscribers exist, and otherwise on
// the first replay that needs it -- a job nobody watches never pays the
// render.
//
// close_all() (the daemon's drain hook) pushes a final
//   {"job": J, "seq": S, "event": "draining", "code": "draining"}
// to every live subscriber and closes them, so event feeds end promptly
// on SIGTERM instead of pinning connection threads past the drain window.
//
// Lock order: bus mutex -> subscription mutex; the bus never calls out
// under its lock except the body closures (which are pure renders).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace nwdec::api {

/// One delivered event. `line` is the full NDJSON wire form, newline
/// terminated: {"job": J, "seq": S, "event": "<type>", ...body}.
struct job_event {
  std::uint64_t job = 0;
  std::uint64_t seq = 0;
  std::string type;
  bool terminal = false;  ///< done | failed | cancelled | timed_out
  bool closing = false;   ///< event_overflow | draining: the feed ends here
  std::string line;
};

class event_bus;

/// One subscriber's bounded queue. next() is the consumer side; the bus
/// pushes. A subscription outlives its bus registration safely (the bus
/// holds weak_ptrs), so transports may drop it whenever the peer goes.
class event_subscription {
 public:
  /// Blocks up to timeout_ms for the next event; nullopt on timeout.
  /// After a terminal or closing event the queue drains to empty and
  /// closed() turns true.
  std::optional<job_event> next(int timeout_ms);
  bool closed() const;

 private:
  friend class event_bus;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<job_event> queue_;
  bool closed_ = false;
  std::size_t capacity_ = 0;
  std::uint64_t job_ = 0;
};

class event_bus {
 public:
  struct options {
    /// Events a subscriber may have pending before it is evicted with
    /// event_overflow. Generous relative to a job's lifecycle (a sweep
    /// emits 3 events; refine adds one progress event per probe).
    std::size_t subscriber_capacity = 256;
  };

  event_bus() = default;
  explicit event_bus(options opts) : options_(opts) {}
  event_bus(const event_bus&) = delete;
  event_bus& operator=(const event_bus&) = delete;

  /// Renders an event's extra body members as a ","-led fragment (or "").
  using body_fn = std::function<std::string()>;

  /// Appends one event to the job's stream (creating the stream on first
  /// publish) and fans it out to live subscribers. Returns the assigned
  /// sequence number.
  std::uint64_t publish(std::uint64_t job, const char* type, bool terminal,
                        std::string body);
  /// publish() with a deferred body: rendered now iff someone is
  /// subscribed, else cached unrendered and materialized on first replay.
  std::uint64_t publish_lazy(std::uint64_t job, const char* type,
                             bool terminal, body_fn body);

  /// Attaches a subscriber: replays history with seq > from_seq, then
  /// streams live events. Returns nullptr for a job with no stream
  /// (never published, or forgotten). A subscription attached after the
  /// stream's terminal event closes right after the replay.
  std::shared_ptr<event_subscription> subscribe(std::uint64_t job,
                                                std::uint64_t from_seq);

  /// Drops a job's stream (retention trim); remaining subscribers are
  /// closed (their terminal event, if any, was already delivered).
  void forget(std::uint64_t job);

  /// Drain hook: pushes a closing "draining" event to every live
  /// subscriber and closes them. Streams stay readable for replay;
  /// idempotent (a second call finds no live subscribers).
  void close_all();

  /// Test introspection: events retained for a job's replay (0 = no
  /// stream).
  std::size_t history_size(std::uint64_t job) const;

 private:
  struct stored_event {
    std::uint64_t seq = 0;
    std::string type;
    bool terminal = false;
    std::string line;  ///< full wire line once rendered
    body_fn lazy;      ///< set until the body is rendered
  };
  struct stream {
    std::uint64_t next_seq = 1;
    bool terminal = false;
    std::vector<stored_event> history;
    std::vector<std::weak_ptr<event_subscription>> subscribers;
  };

  std::uint64_t publish_locked(std::uint64_t job, const char* type,
                               bool terminal, std::string body,
                               body_fn lazy);
  /// Renders (memoizing) a stored event's wire line. Caller holds mutex_.
  const std::string& line_of(std::uint64_t job, stored_event& event);
  /// Delivers to one subscriber, evicting it on overflow. Caller holds
  /// mutex_; takes the subscription mutex (the documented lock order).
  void push_to(const std::shared_ptr<event_subscription>& subscriber,
               const job_event& event);

  options options_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, stream> streams_;
};

}  // namespace nwdec::api
