// api::http_transport -- the HTTP/1.1 front door of the nwdec service,
// on the same socket_server chassis (and the same tcp_limits bounds) as
// the raw NDJSON transport.
//
// Routes:
//   * POST /v1/rpc -- the NDJSON protocol carried verbatim: the body is
//     one or more request lines, each dispatched exactly as the raw
//     socket would (same dispatcher, byte-identical response lines). A
//     single-line body answers with the HTTP status mapped from the
//     response's error "code" (http::status_for_code; 503 carries
//     Retry-After: 1) and Content-Type: application/json; a multi-line
//     body always answers 200 with application/x-ndjson (per-line
//     statuses live in the lines themselves, exactly like the socket).
//   * GET /v1/jobs/{id}/events[?from=N] -- the job's lifecycle event
//     stream as Server-Sent Events (Content-Type: text/event-stream,
//     chunked): one frame per event, `id:` = the event's sequence
//     number, `event:` = its type, `data:` = the exact NDJSON event
//     line (newline stripped). The terminal frame's "result" payload is
//     byte-identical to a status {"wait": true} response's. The stream
//     ends (zero-length chunk, connection close) after the terminal
//     event -- or with a draining event when the daemon shuts down.
//     404 for an unknown/forgotten job; "from" resumes after a seq.
//   * GET /metrics -- the Prometheus text exposition (the old
//     --metrics-port handler, now just a route here).
//
// Transport-level answers (before any route): malformed request -> 400,
// Transfer-Encoding body -> 411, request over max_request_bytes -> 413
// (connection closes), unknown path -> 404, wrong method -> 405, a
// request cut off by read_deadline_ms -> 408 (connection closes), idle
// past idle_timeout_ms -> silent close (nothing was in flight),
// over-cap accept -> 503 with Retry-After (the chassis sheds it).
// Keep-alive follows HTTP/1.1 semantics; during drain every response
// closes (Connection: close) so peers re-connect elsewhere.
#pragma once

#include <cstdint>
#include <string>

#include "api/http.h"
#include "api/socket_server.h"

namespace nwdec::api {

class job_scheduler;

/// Which routes this listener serves: the daemon's --http-port gateway
/// serves all three; the --metrics-port compatibility listener is a
/// gateway with only the metrics route.
struct http_gateway_options {
  bool serve_rpc = true;
  bool serve_events = true;
  bool serve_metrics = true;
  /// Answer every request with Connection: close (single-exchange
  /// listeners like the metrics scrape port).
  bool force_close = false;
  /// SSE pump poll granularity: how often a quiet stream checks for
  /// drain/disconnect, in ms. Never affects delivered bytes.
  int sse_poll_ms = 250;
};

class http_transport final : public socket_server {
 public:
  http_transport(std::uint16_t port, int backlog, tcp_limits limits,
                 http_gateway_options gateway = {});

  /// Wires the events route to a scheduler. Unset (or with serve_events
  /// false), GET /v1/jobs/{id}/events answers 404. Set before serve().
  void set_event_source(job_scheduler* scheduler) { scheduler_ = scheduler; }

 protected:
  void serve_connection(int client, line_handler& handler) override;
  std::string shed_response() const override;

 private:
  /// Serves one parsed request; returns false when the connection must
  /// close (error, explicit Connection: close, SSE stream ended).
  bool handle_request(int client, const http::request& request,
                      line_handler& handler);
  bool serve_rpc(int client, const http::request& request,
                 line_handler& handler, bool keep_alive);
  bool serve_metrics(int client, const http::request& request,
                     bool keep_alive);
  /// The SSE pump; always ends the connection.
  void serve_events(int client, const http::request& request,
                    std::uint64_t job);

  http_gateway_options gateway_;
  job_scheduler* scheduler_ = nullptr;
};

}  // namespace nwdec::api
