// api::dispatcher: typed request dispatch, decoupled from any transport.
//
// handle_line() is the whole service surface: one NDJSON request line in,
// exactly one single-line JSON response out (trailing newline included),
// never throwing -- every failure, from malformed JSON up, becomes an
// "ok": false response echoing the request's "id". It is safe to call from
// any number of transport threads concurrently (the TCP server calls it
// from one thread per connection; the stdio loop from one).
//
// Sweep and refine requests become jobs on the scheduler. Synchronous
// requests (the legacy protocol) submit, wait, and render the completed
// job in the PR 3 wire shape -- the committed daemon golden pins those
// bytes. "async": true requests return
//   {"id": ..., "kind": "sweep", "ok": true, "async": true, "job": N,
//    "state": "queued"}
// immediately; the result is fetched (or awaited) with status requests.
// status/cancel/stats/flush are served inline -- they inspect shared
// state and never queue.
#pragma once

#include <string>

#include "api/job_scheduler.h"
#include "api/types.h"
#include "service/sweep_service.h"

namespace nwdec::api {

/// Where a streaming request's response lines go: a transport-owned sink
/// (socket writer, SSE chunk encoder, ostream). write() returns false
/// when the peer is gone -- the producer must stop pumping then.
class line_sink {
 public:
  virtual ~line_sink() = default;
  virtual bool write(const std::string& line) = 0;
};

/// One NDJSON request line in, one response line out. Implemented by the
/// dispatcher; transports depend only on this.
class line_handler {
 public:
  virtual ~line_handler() = default;
  virtual std::string handle_line(const std::string& line) = 0;

  /// Streaming entry point: most requests write exactly their
  /// handle_line() response to the sink, but a handler may keep writing
  /// (the dispatcher's "subscribe" pumps job events until the stream
  /// ends). Transports that can interleave pushed lines call this;
  /// handle_line() stays the one-in/one-out surface for those that
  /// cannot.
  virtual void handle_stream(const std::string& line, line_sink& sink) {
    sink.write(handle_line(line));
  }
};

class dispatcher final : public line_handler {
 public:
  struct options {
    /// Scheduler worker threads (0 = hardware concurrency).
    std::size_t workers = 1;
    /// Cache file `flush` persists to ('' = in-memory only).
    std::string cache_path;
    /// Finished jobs retained for status fetches.
    std::size_t retain_finished = 1024;
    /// Scheduler queue bound: submissions past this many waiting jobs get
    /// an "overloaded" error response (0 = unbounded).
    std::size_t max_queued = 4096;
    /// Jobs whose submit->terminal wall exceeds this are logged as
    /// `slow_request` warn records (0 = never; the daemon's --slow-ms).
    std::size_t slow_request_ms = 1000;
    /// request_id idempotency keys remembered for duplicate-submit
    /// detection (the daemon's --dedup-window; 0 disables).
    std::size_t dedup_window = 4096;
  };

  explicit dispatcher(service::sweep_service& service);
  dispatcher(service::sweep_service& service, options opts);

  std::string handle_line(const std::string& line) override;

  /// handle_line() plus push delivery: a "subscribe" request pumps job
  /// lifecycle events at the sink until the stream is terminal (or the
  /// sink's write fails); every other request behaves exactly like
  /// handle_line().
  void handle_stream(const std::string& line, line_sink& sink) override;

  job_scheduler& scheduler() { return scheduler_; }

 private:
  /// Shared sweep/refine submission path (async reply or synchronous
  /// wait; request_id retries report their existing job; fully-cached
  /// synchronous sweeps are answered inline by the scheduler's
  /// store-aware admission).
  std::string submit_job(const request& parsed, const char* kind);
  std::string handle(const sweep_request& request);
  std::string handle(const refine_request& request);
  std::string handle(const status_request& request);
  std::string handle(const cancel_request& request);
  std::string handle(const stats_request& request);
  std::string handle(const flush_request& request);
  std::string handle(const metrics_request& request);
  std::string handle(const subscribe_request& request);
  /// The streaming side of "subscribe": ack line, then one line per
  /// event until terminal / overflow / drain / sink failure.
  void serve_subscription(const subscribe_request& request,
                          line_sink& sink);
  /// Renders a terminal job in the legacy synchronous wire shape.
  std::string sync_response(const json_value& id, const job_result& job);

  service::sweep_service& service_;
  std::string cache_path_;
  job_scheduler scheduler_;
};

/// The "ok": false response every failure renders to. A non-empty `code`
/// appends a machine-readable "code" member after "error" (the legacy
/// shape is a byte-prefix of the coded one, so old clients keep parsing).
/// The code vocabulary, by retry class:
///   * retryable as-is, after backoff -- "overloaded" (queue bound shed
///     the job);
///   * retryable on a fresh connection -- "idle_timeout" (transport
///     closed an idle connection), "read_timeout" (a request line was
///     left incomplete past the read deadline), "too_many_connections"
///     (the accept cap shed the connection), "draining" (the daemon
///     shut down before the job could run -- retry lands on the
///     restarted instance);
///   * NOT retryable as-is -- "timed_out" (the job's own deadline
///     expired), "payload_too_large" (request line over the transport's
///     byte cap), "request_id_conflict" (idempotency key reused with a
///     different payload).
/// api::resilient_client implements exactly this classification.
std::string error_response_json(const json_value& id,
                                const std::string& what,
                                const std::string& code = "");

}  // namespace nwdec::api
