#include "api/transport.h"

#include <istream>
#include <ostream>
#include <string>

namespace nwdec::api {

stdio_transport::stdio_transport(std::istream& in, std::ostream& out)
    : in_(in), out_(out) {}

int stdio_transport::serve(line_handler& handler) {
  std::string line;
  while (std::getline(in_, line)) {
    if (line.empty()) continue;
    out_ << handler.handle_line(line) << std::flush;
  }
  return 0;
}

}  // namespace nwdec::api
