#include "api/transport.h"

#include <istream>
#include <ostream>
#include <string>

namespace nwdec::api {

stdio_transport::stdio_transport(std::istream& in, std::ostream& out)
    : in_(in), out_(out) {}

namespace {

// stdout can interleave pushed lines just fine, so the stdio loop runs
// the streaming entry point: a scripted "subscribe" works in batch mode
// too (its events appear as ordinary output lines).
class ostream_sink final : public line_sink {
 public:
  explicit ostream_sink(std::ostream& out) : out_(out) {}
  bool write(const std::string& line) override {
    out_ << line << std::flush;
    return static_cast<bool>(out_);
  }

 private:
  std::ostream& out_;
};

}  // namespace

int stdio_transport::serve(line_handler& handler) {
  ostream_sink sink(out_);
  std::string line;
  while (std::getline(in_, line)) {
    if (line.empty()) continue;
    handler.handle_stream(line, sink);
  }
  return 0;
}

}  // namespace nwdec::api
