// api::job_scheduler: the concurrent execution stage between transports
// and the sweep service.
//
// submit() turns a typed sweep/refine request into a queued job and
// returns its id immediately; N worker threads drain the queue in
// (priority desc, id asc) order. The scheduler is the service's batching
// stage: when a worker picks up a sweep job it collects the maximal
// sweep prefix of that order -- every queued sweep job up to the first
// queued non-sweep, so batching never lets a lower-priority sweep
// overtake a higher-priority refine -- into one sweep_service
// evaluation, so concurrent clients share one engine run (store hits are
// served inside that same pass, misses shard across the engine's
// workers, and duplicate points across jobs compute once). A job whose
// request only fails inside the engine is re-evaluated alone so its
// diagnostic never poisons the jobs it was batched with. Refine jobs run
// one per worker, every probe going through the shared store.
//
// Determinism: a job's result payload is a pure function of (service
// configuration, request) -- the sweep service's evaluation semantics --
// so results are bit-identical at any worker count and under any
// coalescing; only the wrapper's provenance counters (cached / computed /
// topped_up) depend on what the store held when the batch ran.
//
// Lifecycle: cancel() of a queued job removes it; of a running job it
// sets the cooperative cancel flag (state "cancelling") that the
// evaluation observes between refine probes and Monte-Carlo batches --
// the job then terminates cancelled (or done/failed if it beat the flag).
// Deadlines (request "timeout_ms") are enforced at three points: a queued
// job past its deadline is finished timed_out instead of run, a running
// job's checks abort it, and a synchronous wait() times the job out at
// the deadline even when no worker ever picked it up. The queue is
// bounded (options.max_queued): past the bound submit() sheds load by
// throwing overloaded_error instead of growing silently. Finished jobs
// are retained for status/result fetches up to options.retain_finished,
// then forgotten oldest-first; wait() blocks until a job is terminal.
// The destructor stops the workers after their current jobs;
// still-queued jobs are dropped (the daemon drains synchronous requests
// before exit).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "api/event_bus.h"
#include "api/job.h"
#include "api/types.h"
#include "service/sweep_service.h"

namespace nwdec::api {

/// What submit_or_serve() accomplished: either a job was enqueued (or an
/// existing one answered the retry), or the sweep was served inline from
/// the store without a job ever existing.
struct submit_outcome {
  /// The job id; 0 when the request was answered inline (no job).
  std::uint64_t job = 0;
  /// The dedup window recognized this request_id (existing job, or an
  /// earlier inline answer re-served).
  bool deduplicated = false;
  /// Set iff the sweep was answered inline: the full response, every
  /// point a store hit.
  std::shared_ptr<const service::sweep_response> inline_sweep;
};

class job_scheduler {
 public:
  struct options {
    /// Worker threads draining the job queue. More workers mean more
    /// concurrent engine runs (the engine itself is thread-safe); results
    /// never depend on the count.
    std::size_t workers = 1;
    /// Finished jobs retained for status/result fetches.
    std::size_t retain_finished = 1024;
    /// Queue bound: submissions past this many waiting jobs are shed with
    /// overloaded_error (0 = unbounded). Running jobs do not count.
    std::size_t max_queued = 4096;
    /// A job whose submit->terminal wall exceeds this is logged as a
    /// `slow_request` warn record with its full span breakdown
    /// (0 = never log). Strictly out-of-band, like all tracing.
    std::size_t slow_request_ms = 1000;
    /// request_id idempotency keys remembered for duplicate-submit
    /// detection: the most recent this many submissions carrying a
    /// request_id are deduplicated (oldest keys evicted first). 0
    /// disables the window entirely (every submit enqueues).
    std::size_t dedup_window = 4096;
  };

  explicit job_scheduler(service::sweep_service& service);
  job_scheduler(service::sweep_service& service, options opts);
  ~job_scheduler();
  job_scheduler(const job_scheduler&) = delete;
  job_scheduler& operator=(const job_scheduler&) = delete;

  /// Queues a sweep or refine request and returns the job id; throws
  /// invalid_argument_error for the other request kinds (they are served
  /// inline by the dispatcher, not queued) and overloaded_error when the
  /// queue bound sheds the submission (no job is created then).
  ///
  /// Idempotency: a request carrying header.request_id is checked against
  /// the dedup window FIRST -- a remembered key with an identical payload
  /// returns the existing job's id (no new job, no shedding;
  /// `*deduplicated` is set true when the caller passed it), and a
  /// remembered key with a different payload throws conflict_error
  /// without side effects. Exactly-once submission semantics for clients
  /// that retry after a connection reset ate the response.
  std::uint64_t submit(request job, bool* deduplicated = nullptr);

  /// submit() plus store-aware admission: with `allow_inline` (the
  /// dispatcher sets it for SYNCHRONOUS sweep submissions), a sweep whose
  /// every point the store already serves at sufficient provenance
  /// (service::sweep_service::try_serve_cached) is answered inline --
  /// no worker occupied, no job id allocated -- and the outcome carries
  /// the response instead of a job. The request_id dedup window covers
  /// inline answers too: a retried key re-serves inline (store counters
  /// move again -- provenance counters were never part of the purity
  /// contract), and a conflicting payload still throws. Async
  /// submissions and refines always enqueue (they need a job id).
  submit_outcome submit_or_serve(request job, bool allow_inline);

  /// Attaches an event subscription to a job's lifecycle stream
  /// (event_bus semantics: replay from `from_seq`, then live events;
  /// subscribe-after-terminal replays through the terminal event).
  /// nullptr for an unknown -- or already-forgotten -- job.
  std::shared_ptr<event_subscription> subscribe(std::uint64_t job,
                                                std::uint64_t from_seq);

  /// Drain hook: pushes a closing "draining" event to every live event
  /// subscriber and closes their feeds (event_bus::close_all), so
  /// subscription-pumping connection threads exit promptly on SIGTERM.
  void close_event_streams();

  /// Snapshot of a job (result payload included once done); nullopt for
  /// an unknown -- or already-forgotten -- id.
  std::optional<job_result> inspect(std::uint64_t id) const;

  /// Blocks until the job is terminal (or its deadline passes: a job
  /// still queued then is finished timed_out), then returns its
  /// snapshot; nullopt for an unknown id.
  std::optional<job_result> wait(std::uint64_t id);

  /// Cancels a queued job immediately; flags a running job for
  /// cooperative cancellation (it stops at its next between-batch check).
  /// See cancel_outcome for the four possible answers.
  cancel_outcome cancel(std::uint64_t id);

  /// Cancels every non-terminal job at once: queued jobs finish
  /// cancelled immediately, running jobs get the cooperative flag.
  /// Returns how many jobs were touched. The daemon's drain deadline
  /// calls this so a connection thread blocked in a synchronous wait()
  /// is released instead of pinning the process past its drain budget.
  std::size_t cancel_all();

  scheduler_stats stats() const;

 private:
  struct job_record;

  void worker_loop();
  void run_sweep_batch(std::unique_lock<std::mutex>& lock);
  void run_refine(std::unique_lock<std::mutex>& lock,
                  const std::shared_ptr<job_record>& job);
  void finish(job_record& job, job_state state);
  /// Publishes a lifecycle event for a job (caller holds mutex_; the bus
  /// takes its own lock underneath -- the documented scheduler->bus
  /// order).
  void publish_event_locked(const job_record& job, const char* type,
                            bool terminal, std::string body);
  void trim_locked();
  void sync_gauges_locked();
  /// Marks a job running and records its queue-wait span/metrics.
  void start_running_locked(job_record& job);
  job_result snapshot(const job_record& job) const;

  service::sweep_service& service_;
  options options_;
  std::uint64_t trace_seed_ = 0;  ///< per-process anchor trace ids mix in

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers: queue became non-empty
  std::condition_variable done_cv_;  ///< waiters: some job turned terminal
  bool stopping_ = false;
  std::uint64_t next_id_ = 1;
  /// (-priority, id): begin() is the highest-priority, oldest job.
  std::set<std::pair<int, std::uint64_t>> queue_;
  std::map<std::uint64_t, std::shared_ptr<job_record>> jobs_;
  std::deque<std::uint64_t> finished_;  ///< retention ring, oldest first
  scheduler_stats stats_;
  /// The request_id dedup window: key -> (job id, canonical payload).
  /// The payload is kept verbatim (not hashed) so a key collision with
  /// different work is detected exactly, never probabilistically.
  struct dedup_entry {
    std::uint64_t job = 0;
    std::string payload;
  };
  std::map<std::string, dedup_entry> dedup_;
  std::deque<std::string> dedup_order_;  ///< eviction ring, oldest first
  /// Per-job lifecycle event streams. Lock order: mutex_ -> bus mutex;
  /// the bus never calls back into the scheduler.
  event_bus events_;

  std::vector<std::thread> workers_;
};

}  // namespace nwdec::api
