// api::metrics_http_handler: the Prometheus scrape endpoint served on the
// daemon's --metrics-port.
//
// The endpoint reuses tcp_transport wholesale -- its poll loop, wake-pipe
// shutdown, idle timeout, and connection accounting -- by putting the
// transport into single-request mode and treating the HTTP request line
// ("GET /metrics HTTP/1.1") as the one line to answer: the handler
// returns a complete HTTP/1.0 response (Content-Length, Connection:
// close) and the transport closes the connection, which is exactly the
// one-shot discipline Prometheus scrapes, curl, and
// `printf 'GET /metrics\r\n\r\n' | nc` all speak.
//
//   GET /metrics   -> 200, text exposition format 0.0.4 of the global
//                     metrics registry (util/metrics.h)
//   GET <other>    -> 404
//   anything else  -> 400
//
// Telemetry is strictly out-of-band: this listener shares no state with
// the NDJSON protocol beyond the registry it reads.
#pragma once

#include <string>

#include "api/dispatch.h"

namespace nwdec::api {

class metrics_http_handler final : public line_handler {
 public:
  /// `line` is an HTTP request line; returns the full HTTP response.
  std::string handle_line(const std::string& line) override;
};

}  // namespace nwdec::api
