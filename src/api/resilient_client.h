// api::resilient_client: a retrying NDJSON client for hostile networks.
//
// Wraps one logical connection to an nwdec_service TCP endpoint and makes
// call() survive the failures the transport layer hands out: connection
// refused while the daemon restarts, resets that eat a response, the
// server's own self-protection error lines. Retries follow the error-code
// classification documented at api::error_response_json:
//
//   * "overloaded"           -- retry the same request after jittered
//                               exponential backoff (the queue shed it;
//                               no job was created);
//   * "idle_timeout", "read_timeout", "too_many_connections",
//     "draining"             -- reconnect and retry (the connection or
//                               daemon is done for, the request was
//                               never run);
//   * transport failures     -- refused connect, reset, EOF or deadline
//                               before the response line -- reconnect and
//                               retry, but ONLY for idempotent requests:
//                               a lost response does not reveal whether
//                               the submission landed, so blind re-sends
//                               could run a sweep twice. A request is
//                               idempotent when it carries a request_id
//                               (the server's dedup window makes the
//                               retry return the existing job) or its
//                               kind never enqueues work (status, cancel,
//                               stats, flush, metrics, subscribe);
//   * everything else        -- returned to the caller as the answer
//                               ("timed_out", "payload_too_large",
//                               "request_id_conflict", parse errors, ...).
//
// options.auto_request_id makes every sweep/refine submission idempotent
// by minting a request_id when the caller did not supply one (prefix +
// seeded counter hash, unique per client instance), so the whole retry
// ladder applies. All jitter and minted ids derive from options.seed --
// two clients with the same seed behave identically, which the chaos
// tests rely on.
//
// Thread model: one call() at a time per client (the NDJSON protocol is
// request/response in order on a connection); use one client per thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace nwdec::api {

struct client_options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Per-attempt connect budget (0 = the OS default, typically minutes).
  int connect_timeout_ms = 2000;
  /// Per-attempt budget for the full response line to arrive (0 = wait
  /// forever). Expiry counts as a transport failure: reconnect + retry
  /// if idempotent.
  int request_timeout_ms = 30000;
  /// Total tries per call() (first attempt included). At least 1.
  int max_attempts = 5;
  /// Jittered exponential backoff between retries: attempt k sleeps
  /// uniform[base/2, base] where base = min(initial * growth^k, max).
  int backoff_initial_ms = 50;
  int backoff_max_ms = 2000;
  double backoff_growth = 2.0;
  /// Seeds jitter and minted request_ids; same seed, same behavior.
  std::uint64_t seed = 1;
  /// Mint a request_id for sweep/refine lines that lack one, making
  /// every submission safely retryable.
  bool auto_request_id = false;
  /// Minted ids spell <prefix>-<16 hex digits>.
  std::string request_id_prefix = "client";
};

/// What one call() accomplished. `ok` means a response line was received
/// (possibly an "ok": false protocol error the caller should inspect);
/// !ok means every attempt failed at the transport layer and `error`
/// says how the last one died.
struct client_result {
  bool ok = false;
  std::string response;  ///< the response line, newline trimmed
  std::string error;     ///< last transport failure when !ok
  int attempts = 0;      ///< tries consumed (1 = no retry needed)
};

/// What one subscribe_wait() accomplished. `ok` means the job's terminal
/// lifecycle event (done/failed/cancelled/timed_out) was received and
/// `terminal` holds its exact line; !ok means every attempt died first
/// and `error` says how the last one did. `last_seq` is the resume
/// cursor: pass it back as from_seq to continue a stream this call could
/// not finish.
struct subscribe_result {
  bool ok = false;
  std::string terminal;        ///< the terminal event line, newline trimmed
  std::string error;           ///< last failure when !ok
  int attempts = 0;            ///< subscription attempts consumed
  std::uint64_t last_seq = 0;  ///< highest event seq seen across attempts
  std::size_t events = 0;      ///< lifecycle event lines delivered
};

/// How the retry ladder treats an error code (see the header comment).
enum class retry_class {
  none,       ///< the answer is the answer; do not retry
  backoff,    ///< same request again after jittered backoff
  reconnect,  ///< the connection is dead; fresh connection, then retry
};

/// Classification of the server's "code" member; "" classifies as none.
retry_class classify_code(const std::string& code);

class resilient_client {
 public:
  explicit resilient_client(client_options options);
  ~resilient_client();
  resilient_client(const resilient_client&) = delete;
  resilient_client& operator=(const resilient_client&) = delete;

  /// Sends one NDJSON request line (newline optional) and returns the
  /// matching response line, retrying per the classification above.
  /// Never throws on network failure -- inspect client_result.
  client_result call(const std::string& request_line);

  /// Subscribes to a job's lifecycle events and pumps them until the
  /// terminal event arrives. Each delivered event line (newline trimmed)
  /// is handed to on_event as it arrives; the terminal line is also the
  /// return value's `terminal`. The stream survives the same failures
  /// call() retries: a dropped connection, a "draining" daemon, or a
  /// slow-consumer "event_overflow" eviction all reconnect and
  /// resubscribe with from = the last seen sequence number, so the bus
  /// replay fills the gap and no event is delivered twice. A quiet
  /// stream is re-polled for request_timeout_ms per line; expiry counts
  /// as a transport failure (reconnect + resume -- always safe, a
  /// subscription enqueues nothing). Attempts are bounded by
  /// options.max_attempts.
  subscribe_result subscribe_wait(
      std::uint64_t job, std::uint64_t from_seq = 0,
      const std::function<void(const std::string&)>& on_event = nullptr);

  /// True when `line` may be blindly re-sent: it carries a request_id,
  /// or its kind never enqueues work. Malformed lines are not idempotent
  /// (the server answers each copy with its own error line, but we have
  /// no key to collapse them under).
  static bool idempotent(const std::string& line);

  /// The request_id the last call() minted ('' when none was).
  const std::string& last_minted_id() const { return minted_id_; }

 private:
  bool ensure_connected(std::string* error);
  void disconnect();
  /// One send + one response line; false on any transport failure.
  bool attempt(const std::string& line, std::string* response,
               std::string* error);
  /// One subscription attempt: send the subscribe line, pump event lines
  /// into `result` until the stream ends. Returns the retry_class the
  /// ladder should apply (none = finished, for better or worse).
  retry_class pump_subscription(
      std::uint64_t job, subscribe_result& result,
      const std::function<void(const std::string&)>& on_event,
      std::string* error);
  int backoff_ms(int attempt_index);
  std::uint64_t next_random();

  client_options options_;
  int fd_ = -1;
  std::uint64_t rng_state_;
  std::uint64_t mint_counter_ = 0;
  std::string minted_id_;
};

}  // namespace nwdec::api
