#include "api/events.h"

namespace nwdec::api {

void write_result_fields(json_writer& json, const result_payload& payload) {
  if (payload.kind == "sweep") {
    json.field("cached", payload.sweep->cached)
        .field("computed", payload.sweep->computed);
    if (payload.report_topped_up || payload.sweep->topped_up > 0) {
      json.field("topped_up", payload.sweep->topped_up);
    }
    json.key("result");
    service::write_payload(json, *payload.sweep);
    return;
  }
  json.field("evaluations", payload.refined->evaluations)
      .field("cached", payload.refined->cached);
  json.key("result");
  service::write_payload(json, *payload.refined);
}

std::string json_fragment(const std::function<void(json_writer&)>& fill) {
  json_writer json(json_writer::style::compact);
  json.begin_object();
  fill(json);
  json.end_object();
  const std::string text = json.str();  // "{...}\n"
  if (text.size() <= 3) return "";      // "{}\n": nothing to splice
  return "," + text.substr(1, text.size() - 3);
}

}  // namespace nwdec::api
