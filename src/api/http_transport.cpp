#include "api/http_transport.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <optional>
#include <vector>

#include "api/dispatch.h"
#include "api/event_bus.h"
#include "api/job_scheduler.h"
#include "api/transport_metrics.h"
#include "util/metrics.h"
#include "util/net.h"

namespace nwdec::api {

namespace {

// An error answered at the HTTP layer still carries the NDJSON error
// shape in its body, so a client can treat every failure uniformly.
std::string http_error(int status, const std::string& what,
                       const std::string& code = "",
                       const std::vector<std::string>& extra = {}) {
  return http::response(status, "application/json",
                        error_response_json(json_value(), what, code), false,
                        extra);
}

// One SSE frame, chunk-encoded: `id:` carries the sequence number so
// EventSource reconnects can resume, `event:` the lifecycle type, and
// `data:` the exact NDJSON event line (newline stripped) -- the SSE
// framing is transport dressing around the same bytes the raw socket
// pushes.
std::string sse_chunk(const job_event& event) {
  std::string line = event.line;
  while (!line.empty() && line.back() == '\n') line.pop_back();
  std::string frame = "id: " + std::to_string(event.seq) + "\n" +
                      "event: " + event.type + "\n" + "data: " + line +
                      "\n\n";
  char size[32];
  std::snprintf(size, sizeof(size), "%zx\r\n", frame.size());
  return size + frame + "\r\n";
}

// The response "code" drives the HTTP status of single-request bodies;
// responses are the dispatcher's own output, so the parse cannot fail.
int status_of_response_line(const std::string& line) {
  const json_value root = json_parse(line);
  const json_value* ok = root.find("ok");
  const json_value* code = root.find("code");
  return http::status_for_code(code != nullptr ? code->as_string() : "",
                               ok != nullptr && ok->as_bool());
}

}  // namespace

http_transport::http_transport(std::uint16_t port, int backlog,
                               tcp_limits limits,
                               http_gateway_options gateway)
    : socket_server(port, backlog, limits), gateway_(gateway) {}

std::string http_transport::shed_response() const {
  return http_error(
      503,
      "connection limit (" + std::to_string(limits().max_connections) +
          ") reached; retry after backoff",
      "too_many_connections", {"Retry-After: 1"});
}

void http_transport::serve_connection(int client, line_handler& handler) {
  using clock = std::chrono::steady_clock;
  http::request_parser parser(limits().max_request_bytes);
  char chunk[4096];
  // When the current (partial) request's first byte arrived -- the HTTP
  // analogue of the NDJSON transport's partial-line clock.
  clock::time_point request_since{};
  for (;;) {
    // Same two clocks as the raw socket: the idle clock runs while no
    // request is in flight (expiry closes silently -- nothing was owed),
    // the read deadline runs from a request's first byte (expiry answers
    // 408 -- the peer started something and deserves the diagnosis).
    int wait_ms =
        parser.idle() && limits().idle_timeout_ms > 0
            ? limits().idle_timeout_ms
            : -1;
    if (!parser.idle() && limits().read_deadline_ms > 0) {
      const auto deadline =
          request_since +
          std::chrono::milliseconds(limits().read_deadline_ms);
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                clock::now())
              .count();
      if (remaining <= 0) {
        transport_metrics::get().read_timeouts.inc();
        net::send_all(client,
                      http_error(408,
                                 "request incomplete past the read "
                                 "deadline; closing connection",
                                 "read_timeout"));
        return;
      }
      wait_ms = static_cast<int>(remaining);
    }
    if (wait_ms >= 0) {
      pollfd waiting{client, POLLIN, 0};
      const int ready = ::poll(&waiting, 1, wait_ms);
      if (ready < 0 && errno == EINTR) continue;
      if (ready < 0) return;
      if (ready == 0) {
        if (!parser.idle()) continue;  // deadline check above decides
        transport_metrics::get().idle_timeouts.inc();
        return;  // idle close: no request in flight, nothing owed
      }
    }
    const ssize_t n = ::read(client, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    if (parser.idle()) request_since = clock::now();
    parser.consume(chunk, static_cast<std::size_t>(n));
    while (parser.state() == http::request_parser::phase::complete) {
      if (!handle_request(client, parser.result(), handler)) return;
      parser.reset();  // may complete again on pipelined leftovers
      request_since = clock::now();
    }
    if (parser.state() == http::request_parser::phase::failed) {
      if (parser.error_status() == 413) {
        transport_metrics::get().oversized.inc();
      }
      net::send_all(
          client,
          http_error(parser.error_status(), parser.error_reason(),
                     parser.error_status() == 413 ? "payload_too_large"
                                                  : ""));
      return;
    }
  }
}

bool http_transport::handle_request(int client,
                                    const http::request& request,
                                    line_handler& handler) {
  // During drain every response closes so peers reconnect to a live
  // instance instead of queueing more work on a dying one.
  const bool keep_alive =
      request.keep_alive && !gateway_.force_close && !draining();
  const std::string path = request.path();

  if (gateway_.serve_metrics && path == "/metrics") {
    if (request.method != "GET") {
      net::send_all(client,
                    http_error(405, "only GET is supported on /metrics"));
      return false;
    }
    return serve_metrics(client, request, keep_alive);
  }
  if (gateway_.serve_rpc && path == "/v1/rpc") {
    if (request.method != "POST") {
      net::send_all(client,
                    http_error(405, "only POST is supported on /v1/rpc"));
      return false;
    }
    return serve_rpc(client, request, handler, keep_alive);
  }
  if (gateway_.serve_events && path.rfind("/v1/jobs/", 0) == 0 &&
      path.size() > 16 &&
      path.compare(path.size() - 7, 7, "/events") == 0) {
    if (request.method != "GET") {
      net::send_all(
          client, http_error(405, "only GET is supported on an event "
                                  "stream"));
      return false;
    }
    const std::string digits = path.substr(9, path.size() - 16);
    std::uint64_t job = 0;
    bool valid = !digits.empty();
    for (const char c : digits) {
      if (c < '0' || c > '9') {
        valid = false;
        break;
      }
      job = job * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (!valid) {
      net::send_all(client,
                    http_error(404, "malformed job id in '" + path + "'"));
      return false;
    }
    serve_events(client, request, job);
    return false;  // the stream always ends the connection
  }
  net::send_all(
      client,
      http_error(404, "unknown path '" + path +
                          "' (try POST /v1/rpc, GET /v1/jobs/{id}/events, "
                          "GET /metrics)"));
  return false;
}

bool http_transport::serve_rpc(int client, const http::request& request,
                               line_handler& handler, bool keep_alive) {
  // The body is the NDJSON protocol verbatim: one request per line, each
  // answered with exactly the line the raw socket would produce.
  std::vector<std::string> responses;
  std::size_t cursor = 0;
  while (cursor <= request.body.size()) {
    std::size_t end = request.body.find('\n', cursor);
    if (end == std::string::npos) end = request.body.size();
    std::string line = request.body.substr(cursor, end - cursor);
    cursor = end + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    responses.push_back(handler.handle_line(line));
  }
  if (responses.empty()) {
    net::send_all(client,
                  http_error(400, "empty request body (expected one or "
                                  "more NDJSON request lines)"));
    return false;
  }
  if (responses.size() == 1) {
    // One request, one response: surface its error class as the HTTP
    // status so plain HTTP clients get retry semantics without parsing
    // the body. 503 carries Retry-After, matching the backoff the
    // resilient client applies to the same codes.
    const int status = status_of_response_line(responses.front());
    std::vector<std::string> extra;
    if (status == 503) extra.push_back("Retry-After: 1");
    return net::send_all(
               client, http::response(status, "application/json",
                                      responses.front(), keep_alive,
                                      extra)) &&
           keep_alive;
  }
  // A batch answers 200 + NDJSON: per-line verdicts live in the lines,
  // exactly as they do on the socket.
  std::string body;
  for (const std::string& response : responses) body += response;
  return net::send_all(client,
                       http::response(200, "application/x-ndjson", body,
                                      keep_alive)) &&
         keep_alive;
}

bool http_transport::serve_metrics(int client, const http::request&,
                                   bool keep_alive) {
  // The uptime gauge is set at scrape time (not continuously) so every
  // value in one exposition was read at the same moment.
  metrics::registry& registry = metrics::registry::global();
  registry.get_gauge("nwdec_uptime_seconds").set(registry.uptime_seconds());
  return net::send_all(
             client,
             http::response(200,
                            "text/plain; version=0.0.4; charset=utf-8",
                            metrics::to_prometheus(registry.snapshot()),
                            keep_alive)) &&
         keep_alive;
}

void http_transport::serve_events(int client, const http::request& request,
                                  std::uint64_t job) {
  std::uint64_t from = 0;
  const std::string from_param = request.query_param("from");
  for (const char c : from_param) {
    if (c < '0' || c > '9') {
      from = 0;
      break;
    }
    from = from * 10 + static_cast<std::uint64_t>(c - '0');
  }
  const std::shared_ptr<event_subscription> events =
      scheduler_ == nullptr ? nullptr : scheduler_->subscribe(job, from);
  if (events == nullptr) {
    net::send_all(client,
                  http_error(404, "unknown job id " + std::to_string(job) +
                                      " (never submitted, or already "
                                      "forgotten)"));
    return;
  }
  if (!net::send_all(client,
                     "HTTP/1.1 200 OK\r\n"
                     "Content-Type: text/event-stream\r\n"
                     "Cache-Control: no-cache\r\n"
                     "Transfer-Encoding: chunked\r\n"
                     "Connection: close\r\n"
                     "\r\n")) {
    return;
  }
  const int poll_ms = gateway_.sse_poll_ms > 0 ? gateway_.sse_poll_ms : 250;
  for (;;) {
    const std::optional<job_event> event = events->next(poll_ms);
    if (event.has_value()) {
      if (!net::send_all(client, sse_chunk(*event))) return;
      continue;
    }
    if (events->closed()) break;
    if (draining()) {
      // Fallback for a listener whose drain-start action was not wired
      // to close_event_streams(): end the stream ourselves so the drain
      // window can finish. Subscribers treat it like the bus's own
      // draining event: reconnect, resume from the last seen id.
      job_event drain_event;
      drain_event.job = job;
      drain_event.type = "draining";
      drain_event.line = "{\"job\":" + std::to_string(job) +
                         ",\"event\":\"draining\",\"code\":\"draining\"}\n";
      net::send_all(client, sse_chunk(drain_event));
      break;
    }
  }
  net::send_all(client, "0\r\n\r\n");  // chunked-encoding terminator
}

}  // namespace nwdec::api
