// Internal: the connection-lifecycle metrics shared by every socket
// front end. One registry family regardless of protocol -- an operator
// watching nwdec_connections_active sees NDJSON and HTTP connections in
// one gauge, exactly like the kernel sees them in one fd table.
#pragma once

#include "util/metrics.h"

namespace nwdec::api {

struct transport_metrics {
  metrics::counter& accepted;
  metrics::gauge& active;
  metrics::counter& shed;
  metrics::counter& idle_timeouts;
  metrics::counter& read_timeouts;
  metrics::counter& oversized;
  metrics::counter& drains;
  metrics::counter& drain_forced;
  metrics::gauge& drain_seconds;

  static transport_metrics& get() {
    static transport_metrics instance = [] {
      metrics::registry& reg = metrics::registry::global();
      return transport_metrics{
          reg.get_counter("nwdec_connections_accepted_total"),
          reg.get_gauge("nwdec_connections_active"),
          reg.get_counter("nwdec_connections_shed_total"),
          reg.get_counter("nwdec_connections_closed_total",
                          "reason=\"idle_timeout\""),
          reg.get_counter("nwdec_connections_closed_total",
                          "reason=\"read_timeout\""),
          reg.get_counter("nwdec_connections_closed_total",
                          "reason=\"payload_too_large\""),
          reg.get_counter("nwdec_drain_total"),
          reg.get_counter("nwdec_drain_forced_connections_total"),
          reg.get_gauge("nwdec_drain_seconds")};
    }();
    return instance;
  }
};

}  // namespace nwdec::api
