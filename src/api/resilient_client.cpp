#include "api/resilient_client.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "util/json.h"
#include "util/net.h"

namespace nwdec::api {

namespace {

// splitmix64: tiny, seedable, and plenty for jitter and id minting.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The parsed facts retry decisions need from a request line.
struct line_shape {
  bool parsed = false;
  std::string kind;
  bool has_request_id = false;
};

line_shape inspect_line(const std::string& line) {
  line_shape shape;
  try {
    const json_value root = json_parse(line);
    if (!root.is_object()) return shape;
    shape.parsed = true;
    if (const json_value* kind = root.find("kind"))
      shape.kind = kind->as_string();
    shape.has_request_id = root.find("request_id") != nullptr;
  } catch (const std::exception&) {
    // Malformed lines go to the server as-is (it answers with its own
    // diagnostic); shape.parsed stays false.
  }
  return shape;
}

/// True for the kinds that never enqueue work -- always safe to re-send.
bool kind_never_enqueues(const std::string& kind) {
  return kind == "status" || kind == "cancel" || kind == "stats" ||
         kind == "flush" || kind == "metrics";
}

/// The "code" of an "ok": false response line; "" otherwise.
std::string response_code(const std::string& response) {
  try {
    const json_value root = json_parse(response);
    if (!root.is_object()) return "";
    const json_value* ok = root.find("ok");
    if (ok == nullptr || ok->as_bool()) return "";
    if (const json_value* code = root.find("code")) return code->as_string();
  } catch (const std::exception&) {
  }
  return "";
}

}  // namespace

retry_class classify_code(const std::string& code) {
  if (code == "overloaded") return retry_class::backoff;
  if (code == "idle_timeout" || code == "read_timeout" ||
      code == "too_many_connections" || code == "draining") {
    return retry_class::reconnect;
  }
  return retry_class::none;
}

bool resilient_client::idempotent(const std::string& line) {
  const line_shape shape = inspect_line(line);
  if (!shape.parsed) return false;
  if (kind_never_enqueues(shape.kind)) return true;
  return shape.has_request_id;
}

resilient_client::resilient_client(client_options options)
    : options_(std::move(options)), rng_state_(mix64(options_.seed)) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

resilient_client::~resilient_client() { disconnect(); }

void resilient_client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool resilient_client::ensure_connected(std::string* error) {
  if (fd_ >= 0) return true;
  fd_ = net::connect_tcp(options_.host, options_.port,
                         options_.connect_timeout_ms);
  if (fd_ < 0) {
    *error = "cannot connect to " + options_.host + ":" +
             std::to_string(options_.port);
    return false;
  }
  return true;
}

std::uint64_t resilient_client::next_random() {
  rng_state_ = mix64(rng_state_);
  return rng_state_;
}

int resilient_client::backoff_ms(int attempt_index) {
  double base = static_cast<double>(options_.backoff_initial_ms);
  for (int i = 0; i < attempt_index; ++i) base *= options_.backoff_growth;
  if (base > options_.backoff_max_ms)
    base = static_cast<double>(options_.backoff_max_ms);
  // Jitter in [base/2, base]: decorrelates a thundering herd of clients
  // all kicked off the same dead server.
  const double fraction =
      0.5 + 0.5 * (static_cast<double>(next_random() >> 11) /
                   static_cast<double>(1ULL << 53));
  return static_cast<int>(base * fraction);
}

bool resilient_client::attempt(const std::string& line, std::string* response,
                               std::string* error) {
  if (!ensure_connected(error)) return false;
  std::string wire = line;
  if (wire.empty() || wire.back() != '\n') wire += '\n';
  if (!net::send_all(fd_, wire)) {
    *error = "send failed (connection reset)";
    return false;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.request_timeout_ms);
  std::string buffer;
  char chunk[4096];
  for (;;) {
    int wait_ms = -1;
    if (options_.request_timeout_ms > 0) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) {
        *error = "no response within " +
                 std::to_string(options_.request_timeout_ms) + " ms";
        return false;
      }
      wait_ms = static_cast<int>(remaining);
    }
    const long n = net::read_some(fd_, chunk, sizeof(chunk), wait_ms);
    if (n == -2) {
      *error = "no response within " +
               std::to_string(options_.request_timeout_ms) + " ms";
      return false;
    }
    if (n == 0) {
      *error = "connection closed before the response line";
      return false;
    }
    if (n < 0) {
      *error = "read failed (connection reset)";
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      *response = buffer.substr(0, newline);
      // Anything past the newline belongs to no outstanding request on
      // this strictly request/response client; drop it.
      return true;
    }
  }
}

client_result resilient_client::call(const std::string& request_line) {
  std::string line = request_line;
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.pop_back();

  minted_id_.clear();
  if (options_.auto_request_id) {
    const line_shape shape = inspect_line(line);
    if (shape.parsed && (shape.kind == "sweep" || shape.kind == "refine") &&
        !shape.has_request_id) {
      char hex[17];
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(
                        mix64(options_.seed ^ ++mint_counter_)));
      minted_id_ = options_.request_id_prefix + "-" + hex;
      // Splice the key in right after the opening brace; the request is
      // an object (shape.parsed checked), so the text form starts at '{'.
      const std::size_t brace = line.find('{');
      std::size_t after = brace + 1;
      while (after < line.size() &&
             (line[after] == ' ' || line[after] == '\t'))
        ++after;
      const bool empty_object = after < line.size() && line[after] == '}';
      line.insert(brace + 1, "\"request_id\":\"" + minted_id_ + "\"" +
                                 (empty_object ? "" : ","));
    }
  }

  const bool transport_retry_safe = idempotent(line);
  client_result result;
  for (int i = 0; i < options_.max_attempts; ++i) {
    ++result.attempts;
    const bool last = i + 1 == options_.max_attempts;
    std::string response, error;
    if (!attempt(line, &response, &error)) {
      disconnect();
      result.ok = false;
      result.response.clear();
      result.error = error;
      // An ambiguous failure (the request may have landed, the response
      // is gone) is only re-sent when the dedup window -- or the kind --
      // makes the retry a no-op server-side.
      if (!transport_retry_safe || last) return result;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms(i)));
      continue;
    }
    result.ok = true;
    result.response = response;
    result.error.clear();
    switch (classify_code(response_code(response))) {
      case retry_class::none:
        return result;
      case retry_class::backoff:
        // "overloaded" sheds before any job exists, so re-sending is
        // safe for every request kind.
        break;
      case retry_class::reconnect:
        disconnect();
        break;
    }
    if (last) return result;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms(i)));
  }
  return result;
}

}  // namespace nwdec::api
