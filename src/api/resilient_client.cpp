#include "api/resilient_client.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "util/json.h"
#include "util/net.h"

namespace nwdec::api {

namespace {

// splitmix64: tiny, seedable, and plenty for jitter and id minting.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The parsed facts retry decisions need from a request line.
struct line_shape {
  bool parsed = false;
  std::string kind;
  bool has_request_id = false;
};

line_shape inspect_line(const std::string& line) {
  line_shape shape;
  try {
    const json_value root = json_parse(line);
    if (!root.is_object()) return shape;
    shape.parsed = true;
    if (const json_value* kind = root.find("kind"))
      shape.kind = kind->as_string();
    shape.has_request_id = root.find("request_id") != nullptr;
  } catch (const std::exception&) {
    // Malformed lines go to the server as-is (it answers with its own
    // diagnostic); shape.parsed stays false.
  }
  return shape;
}

/// True for the kinds that never enqueue work -- always safe to re-send.
bool kind_never_enqueues(const std::string& kind) {
  return kind == "status" || kind == "cancel" || kind == "stats" ||
         kind == "flush" || kind == "metrics" || kind == "subscribe";
}

bool terminal_event_type(const std::string& type) {
  return type == "done" || type == "failed" || type == "cancelled" ||
         type == "timed_out";
}

/// The "code" of an "ok": false response line; "" otherwise.
std::string response_code(const std::string& response) {
  try {
    const json_value root = json_parse(response);
    if (!root.is_object()) return "";
    const json_value* ok = root.find("ok");
    if (ok == nullptr || ok->as_bool()) return "";
    if (const json_value* code = root.find("code")) return code->as_string();
  } catch (const std::exception&) {
  }
  return "";
}

}  // namespace

retry_class classify_code(const std::string& code) {
  if (code == "overloaded") return retry_class::backoff;
  if (code == "idle_timeout" || code == "read_timeout" ||
      code == "too_many_connections" || code == "draining") {
    return retry_class::reconnect;
  }
  return retry_class::none;
}

bool resilient_client::idempotent(const std::string& line) {
  const line_shape shape = inspect_line(line);
  if (!shape.parsed) return false;
  if (kind_never_enqueues(shape.kind)) return true;
  return shape.has_request_id;
}

resilient_client::resilient_client(client_options options)
    : options_(std::move(options)), rng_state_(mix64(options_.seed)) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

resilient_client::~resilient_client() { disconnect(); }

void resilient_client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool resilient_client::ensure_connected(std::string* error) {
  if (fd_ >= 0) return true;
  fd_ = net::connect_tcp(options_.host, options_.port,
                         options_.connect_timeout_ms);
  if (fd_ < 0) {
    *error = "cannot connect to " + options_.host + ":" +
             std::to_string(options_.port);
    return false;
  }
  return true;
}

std::uint64_t resilient_client::next_random() {
  rng_state_ = mix64(rng_state_);
  return rng_state_;
}

int resilient_client::backoff_ms(int attempt_index) {
  double base = static_cast<double>(options_.backoff_initial_ms);
  for (int i = 0; i < attempt_index; ++i) base *= options_.backoff_growth;
  if (base > options_.backoff_max_ms)
    base = static_cast<double>(options_.backoff_max_ms);
  // Jitter in [base/2, base]: decorrelates a thundering herd of clients
  // all kicked off the same dead server.
  const double fraction =
      0.5 + 0.5 * (static_cast<double>(next_random() >> 11) /
                   static_cast<double>(1ULL << 53));
  return static_cast<int>(base * fraction);
}

bool resilient_client::attempt(const std::string& line, std::string* response,
                               std::string* error) {
  if (!ensure_connected(error)) return false;
  std::string wire = line;
  if (wire.empty() || wire.back() != '\n') wire += '\n';
  if (!net::send_all(fd_, wire)) {
    *error = "send failed (connection reset)";
    return false;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.request_timeout_ms);
  std::string buffer;
  char chunk[4096];
  for (;;) {
    int wait_ms = -1;
    if (options_.request_timeout_ms > 0) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) {
        *error = "no response within " +
                 std::to_string(options_.request_timeout_ms) + " ms";
        return false;
      }
      wait_ms = static_cast<int>(remaining);
    }
    const long n = net::read_some(fd_, chunk, sizeof(chunk), wait_ms);
    if (n == -2) {
      *error = "no response within " +
               std::to_string(options_.request_timeout_ms) + " ms";
      return false;
    }
    if (n == 0) {
      *error = "connection closed before the response line";
      return false;
    }
    if (n < 0) {
      *error = "read failed (connection reset)";
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      *response = buffer.substr(0, newline);
      // Anything past the newline belongs to no outstanding request on
      // this strictly request/response client; drop it.
      return true;
    }
  }
}

retry_class resilient_client::pump_subscription(
    std::uint64_t job, subscribe_result& result,
    const std::function<void(const std::string&)>& on_event,
    std::string* error) {
  if (!ensure_connected(error)) return retry_class::reconnect;
  std::string wire =
      "{\"id\":0,\"kind\":\"subscribe\",\"job\":" + std::to_string(job);
  if (result.last_seq > 0)
    wire += ",\"from\":" + std::to_string(result.last_seq);
  wire += "}\n";
  if (!net::send_all(fd_, wire)) {
    *error = "send failed (connection reset)";
    return retry_class::reconnect;
  }

  std::string buffer;
  char chunk[4096];
  // The per-line deadline restarts on every delivered line: a stream
  // that keeps flowing may run as long as the job does, a stream that
  // goes quiet for request_timeout_ms reconnects (and resumes).
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.request_timeout_ms);
  for (;;) {
    std::size_t newline = 0;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(options_.request_timeout_ms);
      json_value root;
      try {
        root = json_parse(line);
      } catch (const std::exception&) {
        *error = "unparseable line from the server: " + line;
        return retry_class::reconnect;
      }
      if (const json_value* event = root.find("event")) {
        if (const json_value* seq = root.find("seq")) {
          const std::uint64_t value =
              static_cast<std::uint64_t>(seq->as_number());
          if (value > result.last_seq) result.last_seq = value;
        }
        const std::string type = event->as_string();
        if (type == "event_overflow" || type == "draining") {
          // The server ended the stream, not the job: an evicted slow
          // consumer resubscribes and the replay fills the gap; a
          // draining daemon is reconnected like any dying connection.
          *error = "stream closed by the server (" + type + ")";
          return retry_class::reconnect;
        }
        ++result.events;
        if (on_event) on_event(line);
        if (terminal_event_type(type)) {
          result.ok = true;
          result.terminal = line;
          result.error.clear();
          return retry_class::none;
        }
        continue;
      }
      const std::string code = response_code(line);
      if (const json_value* ok = root.find("ok"); ok && ok->as_bool()) {
        continue;  // the subscription ack; events follow
      }
      const retry_class verdict = classify_code(code);
      if (verdict == retry_class::none) {
        // A definitive refusal (unknown job, bad grammar): the answer is
        // the answer.
        result.ok = false;
        result.error = line;
        return retry_class::none;
      }
      *error = "server refused the subscription (" +
               (code.empty() ? std::string("no code") : code) + ")";
      return verdict;
    }
    int wait_ms = -1;
    if (options_.request_timeout_ms > 0) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) {
        *error = "no event within " +
                 std::to_string(options_.request_timeout_ms) + " ms";
        return retry_class::reconnect;
      }
      wait_ms = static_cast<int>(remaining);
    }
    const long n = net::read_some(fd_, chunk, sizeof(chunk), wait_ms);
    if (n == -2) {
      *error = "no event within " +
               std::to_string(options_.request_timeout_ms) + " ms";
      return retry_class::reconnect;
    }
    if (n == 0) {
      *error = "connection closed mid-stream";
      return retry_class::reconnect;
    }
    if (n < 0) {
      *error = "read failed (connection reset)";
      return retry_class::reconnect;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

subscribe_result resilient_client::subscribe_wait(
    std::uint64_t job, std::uint64_t from_seq,
    const std::function<void(const std::string&)>& on_event) {
  subscribe_result result;
  result.last_seq = from_seq;
  for (int i = 0; i < options_.max_attempts; ++i) {
    ++result.attempts;
    std::string error;
    const retry_class verdict =
        pump_subscription(job, result, on_event, &error);
    if (verdict == retry_class::none) return result;
    if (verdict == retry_class::reconnect) disconnect();
    result.error = error;
    if (i + 1 == options_.max_attempts) return result;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms(i)));
  }
  return result;
}

client_result resilient_client::call(const std::string& request_line) {
  std::string line = request_line;
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.pop_back();

  minted_id_.clear();
  if (options_.auto_request_id) {
    const line_shape shape = inspect_line(line);
    if (shape.parsed && (shape.kind == "sweep" || shape.kind == "refine") &&
        !shape.has_request_id) {
      char hex[17];
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(
                        mix64(options_.seed ^ ++mint_counter_)));
      minted_id_ = options_.request_id_prefix + "-" + hex;
      // Splice the key in right after the opening brace; the request is
      // an object (shape.parsed checked), so the text form starts at '{'.
      const std::size_t brace = line.find('{');
      std::size_t after = brace + 1;
      while (after < line.size() &&
             (line[after] == ' ' || line[after] == '\t'))
        ++after;
      const bool empty_object = after < line.size() && line[after] == '}';
      line.insert(brace + 1, "\"request_id\":\"" + minted_id_ + "\"" +
                                 (empty_object ? "" : ","));
    }
  }

  const bool transport_retry_safe = idempotent(line);
  client_result result;
  for (int i = 0; i < options_.max_attempts; ++i) {
    ++result.attempts;
    const bool last = i + 1 == options_.max_attempts;
    std::string response, error;
    if (!attempt(line, &response, &error)) {
      disconnect();
      result.ok = false;
      result.response.clear();
      result.error = error;
      // An ambiguous failure (the request may have landed, the response
      // is gone) is only re-sent when the dedup window -- or the kind --
      // makes the retry a no-op server-side.
      if (!transport_retry_safe || last) return result;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms(i)));
      continue;
    }
    result.ok = true;
    result.response = response;
    result.error.clear();
    switch (classify_code(response_code(response))) {
      case retry_class::none:
        return result;
      case retry_class::backoff:
        // "overloaded" sheds before any job exists, so re-sending is
        // safe for every request kind.
        break;
      case retry_class::reconnect:
        disconnect();
        break;
    }
    if (last) return result;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms(i)));
  }
  return result;
}

}  // namespace nwdec::api
