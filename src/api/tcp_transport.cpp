#include "api/tcp_transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <string>

#include "api/transport_metrics.h"
#include "util/net.h"

namespace nwdec::api {

namespace {

// Response lines (and pushed subscription events) go straight to the
// socket; a failed send flips peer_gone so the read loop stops.
class socket_sink final : public line_sink {
 public:
  socket_sink(int fd, bool& peer_gone) : fd_(fd), peer_gone_(peer_gone) {}
  bool write(const std::string& line) override {
    if (net::send_all(fd_, line)) return true;
    peer_gone_ = true;
    return false;
  }

 private:
  int fd_;
  bool& peer_gone_;
};

}  // namespace

tcp_transport::tcp_transport(std::uint16_t port, int backlog,
                             int idle_timeout_ms)
    : tcp_transport(port, backlog, [&] {
        tcp_limits limits;
        limits.idle_timeout_ms = idle_timeout_ms;
        return limits;
      }()) {}

tcp_transport::tcp_transport(std::uint16_t port, int backlog,
                             tcp_limits limits)
    : socket_server(port, backlog, limits) {}

std::string tcp_transport::shed_response() const {
  return error_response_json(
      json_value(),
      "connection limit (" + std::to_string(limits().max_connections) +
          ") reached; retry after backoff",
      "too_many_connections");
}

void tcp_transport::serve_connection(int client, line_handler& handler) {
  using clock = std::chrono::steady_clock;
  std::string buffer;
  char chunk[4096];
  bool peer_gone = false;
  bool answered = false;
  socket_sink sink(client, peer_gone);
  // When the buffered partial line started (slowloris clock); reset every
  // time the buffer drains back to empty.
  clock::time_point partial_since{};
  const auto answer = [&](std::string line) {
    if (!line.empty() && line.back() == '\r') line.pop_back();  // nc/telnet
    if (line.empty()) return;
    handler.handle_stream(line, sink);
    answered = true;
  };
  for (;;) {
    // Bound how long a peer may hold this connection thread (and its fd)
    // without progress: poll before blocking in read, and on expiry say
    // why the connection is closing -- a client stuck mid-request
    // deserves a diagnosis, not a silent RST. Two clocks run here: the
    // idle clock resets on every received byte; the read-deadline clock
    // only resets when a full line arrives, so a slowloris peer dribbling
    // one byte per poll still runs out of budget.
    int wait_ms =
        limits().idle_timeout_ms > 0 ? limits().idle_timeout_ms : -1;
    if (!buffer.empty() && limits().read_deadline_ms > 0) {
      const auto deadline =
          partial_since +
          std::chrono::milliseconds(limits().read_deadline_ms);
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                clock::now())
              .count();
      if (remaining <= 0) {
        transport_metrics::get().read_timeouts.inc();
        net::send_all(client,
                      error_response_json(
                          json_value(),
                          "request line incomplete past the read deadline; "
                          "closing connection",
                          "read_timeout"));
        // The peer was just told this line never completed; answering its
        // fragments after that would contradict the diagnosis.
        buffer.clear();
        break;
      }
      if (wait_ms < 0 || remaining < wait_ms)
        wait_ms = static_cast<int>(remaining);
    }
    if (wait_ms >= 0) {
      pollfd waiting{client, POLLIN, 0};
      const int ready = ::poll(&waiting, 1, wait_ms);
      if (ready < 0 && errno == EINTR) continue;
      if (ready < 0) break;
      if (ready == 0) {
        if (!buffer.empty() && limits().read_deadline_ms > 0) {
          // Could be either clock; loop back so the deadline check above
          // decides (and emits the read_timeout line if it expired).
          continue;
        }
        transport_metrics::get().idle_timeouts.inc();
        net::send_all(client,
                      error_response_json(json_value(),
                                          "connection idle for too long; "
                                          "closing",
                                          "idle_timeout"));
        buffer.clear();  // never answer fragments after announcing a close
        break;
      }
    }
    const ssize_t n = ::read(client, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    if (buffer.empty()) partial_since = clock::now();
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline = 0;
    while (!peer_gone && !(single_request_ && answered) &&
           (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      partial_since = clock::now();  // the next line's budget starts now
      answer(std::move(line));
    }
    if (single_request_ && answered) break;
    if (buffer.size() > limits().max_request_bytes) {
      // Hard cap on one pending request line: a peer streaming bytes
      // without ever sending a newline must cost bounded memory. Real
      // requests are a few hundred bytes; the largest sane grids are
      // well under the 4 MiB default.
      transport_metrics::get().oversized.inc();
      net::send_all(
          client,
          error_response_json(
              json_value(),
              "request line exceeds the " +
                  std::to_string(limits().max_request_bytes) +
                  " byte limit; closing connection",
              "payload_too_large"));
      buffer.clear();
      break;
    }
    if (peer_gone) break;
  }
  // A final request without a trailing newline still gets its answer --
  // the stdio transport (std::getline) serves such scripts, and the two
  // transports promise identical behavior.
  if (!peer_gone && !buffer.empty() && !(single_request_ && answered)) {
    answer(std::move(buffer));
  }
  // The chassis deregisters and closes the fd after this returns.
}

}  // namespace nwdec::api
