#include "api/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "util/error.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/net.h"

namespace nwdec::api {

namespace {

struct transport_metrics {
  metrics::counter& accepted;
  metrics::gauge& active;
  metrics::counter& shed;
  metrics::counter& idle_timeouts;
  metrics::counter& read_timeouts;
  metrics::counter& oversized;
  metrics::counter& drains;
  metrics::counter& drain_forced;
  metrics::gauge& drain_seconds;

  static transport_metrics& get() {
    static transport_metrics instance = [] {
      metrics::registry& reg = metrics::registry::global();
      return transport_metrics{
          reg.get_counter("nwdec_connections_accepted_total"),
          reg.get_gauge("nwdec_connections_active"),
          reg.get_counter("nwdec_connections_shed_total"),
          reg.get_counter("nwdec_connections_closed_total",
                          "reason=\"idle_timeout\""),
          reg.get_counter("nwdec_connections_closed_total",
                          "reason=\"read_timeout\""),
          reg.get_counter("nwdec_connections_closed_total",
                          "reason=\"payload_too_large\""),
          reg.get_counter("nwdec_drain_total"),
          reg.get_counter("nwdec_drain_forced_connections_total"),
          reg.get_gauge("nwdec_drain_seconds")};
    }();
    return instance;
  }
};

}  // namespace

tcp_transport::tcp_transport(std::uint16_t port, int backlog,
                             int idle_timeout_ms)
    : tcp_transport(port, backlog, [&] {
        tcp_limits limits;
        limits.idle_timeout_ms = idle_timeout_ms;
        return limits;
      }()) {}

tcp_transport::tcp_transport(std::uint16_t port, int backlog,
                             tcp_limits limits)
    : limits_(limits) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw error("tcp_transport: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_ANY);
  address.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    ::close(listen_fd_);
    throw error("tcp_transport: cannot bind port " + std::to_string(port) +
                " (" + std::strerror(errno) + ")");
  }
  if (::listen(listen_fd_, backlog) != 0) {
    ::close(listen_fd_);
    throw error("tcp_transport: cannot listen on port " +
                std::to_string(port));
  }
  socklen_t length = sizeof(address);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                    &length) != 0) {
    ::close(listen_fd_);
    throw error("tcp_transport: cannot read the bound port");
  }
  port_ = ntohs(address.sin_port);

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    ::close(listen_fd_);
    throw error("tcp_transport: cannot create the shutdown pipe");
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
}

tcp_transport::~tcp_transport() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

void tcp_transport::shutdown() {
  // One byte on the wake pipe; write() is async-signal-safe, so signal
  // handlers can do exactly this through shutdown_fd().
  const char wake = 'x';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_, &wake, 1);
}

int tcp_transport::serve(line_handler& handler) {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // shutdown requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    {
      // Register before the thread exists so serve()'s drain barrier can
      // never miss a connection that is about to start.
      const std::lock_guard<std::mutex> lock(mutex_);
      if (limits_.max_connections > 0 &&
          active_ >= limits_.max_connections) {
        // Accept-shedding: past the cap every connection thread we could
        // start is one a hostile peer could pin, so answer with the
        // retry-on-a-fresh-connection code and close inline -- the
        // error line is tiny, so the one blocking send here cannot stall
        // the accept loop the way serving the connection would.
        transport_metrics::get().shed.inc();
        net::send_all(client,
                      error_response_json(
                          json_value(),
                          "connection limit (" +
                              std::to_string(limits_.max_connections) +
                              ") reached; retry after backoff",
                          "too_many_connections"));
        ::close(client);
        continue;
      }
      clients_.push_back(client);
      ++active_;
      transport_metrics::get().accepted.inc();
      transport_metrics::get().active.set(static_cast<double>(active_));
    }
    std::thread([this, client, &handler] {
      serve_connection(client, handler);
    }).detach();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (limits_.drain_ms > 0 && active_ > 0) {
    // Graceful drain: half-close every connection -- their reads return
    // 0, so each thread answers what it already buffered and exits --
    // and give in-flight requests up to drain_ms to finish before the
    // hard close below. Responses still flow during the window (only
    // the read side is shut).
    transport_metrics::get().drains.inc();
    logging::event(logging::level::info, "tcp", "draining")
        .field("connections", active_)
        .field("drain_ms", limits_.drain_ms);
    const auto drain_start = std::chrono::steady_clock::now();
    for (const int client : clients_) ::shutdown(client, SHUT_RD);
    idle_cv_.wait_for(lock, std::chrono::milliseconds(limits_.drain_ms),
                      [this] { return active_ == 0; });
    const std::size_t stragglers = active_;
    if (stragglers > 0) {
      transport_metrics::get().drain_forced.inc(stragglers);
      logging::event(logging::level::warn, "tcp", "drain_deadline")
          .field("forced", stragglers);
      if (drain_deadline_action_) {
        // A force-closed socket cannot unblock a thread waiting inside a
        // synchronous evaluation; the action (the daemon wires it to
        // cancel every outstanding job) releases those cooperatively.
        lock.unlock();
        drain_deadline_action_();
        lock.lock();
      }
    }
    transport_metrics::get().drain_seconds.set(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      drain_start)
            .count());
  }
  // Unblock every remaining connection thread (reads AND writes fail
  // from here), then wait for the last one to deregister -- `handler`
  // and `this` must outlive them.
  for (const int client : clients_) ::shutdown(client, SHUT_RDWR);
  idle_cv_.wait(lock, [this] { return active_ == 0; });
  return 0;
}

void tcp_transport::serve_connection(int client, line_handler& handler) {
  using clock = std::chrono::steady_clock;
  std::string buffer;
  char chunk[4096];
  bool peer_gone = false;
  bool answered = false;
  // When the buffered partial line started (slowloris clock); reset every
  // time the buffer drains back to empty.
  clock::time_point partial_since{};
  const auto answer = [&](std::string line) {
    if (!line.empty() && line.back() == '\r') line.pop_back();  // nc/telnet
    if (line.empty()) return;
    if (!net::send_all(client, handler.handle_line(line))) peer_gone = true;
    answered = true;
  };
  for (;;) {
    // Bound how long a peer may hold this connection thread (and its fd)
    // without progress: poll before blocking in read, and on expiry say
    // why the connection is closing -- a client stuck mid-request
    // deserves a diagnosis, not a silent RST. Two clocks run here: the
    // idle clock resets on every received byte; the read-deadline clock
    // only resets when a full line arrives, so a slowloris peer dribbling
    // one byte per poll still runs out of budget.
    int wait_ms = limits_.idle_timeout_ms > 0 ? limits_.idle_timeout_ms : -1;
    if (!buffer.empty() && limits_.read_deadline_ms > 0) {
      const auto deadline =
          partial_since + std::chrono::milliseconds(limits_.read_deadline_ms);
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                                 deadline - clock::now())
                                 .count();
      if (remaining <= 0) {
        transport_metrics::get().read_timeouts.inc();
        net::send_all(client,
                      error_response_json(
                          json_value(),
                          "request line incomplete past the read deadline; "
                          "closing connection",
                          "read_timeout"));
        // The peer was just told this line never completed; answering its
        // fragments after that would contradict the diagnosis.
        buffer.clear();
        break;
      }
      if (wait_ms < 0 || remaining < wait_ms)
        wait_ms = static_cast<int>(remaining);
    }
    if (wait_ms >= 0) {
      pollfd waiting{client, POLLIN, 0};
      const int ready = ::poll(&waiting, 1, wait_ms);
      if (ready < 0 && errno == EINTR) continue;
      if (ready < 0) break;
      if (ready == 0) {
        if (!buffer.empty() && limits_.read_deadline_ms > 0) {
          // Could be either clock; loop back so the deadline check above
          // decides (and emits the read_timeout line if it expired).
          continue;
        }
        transport_metrics::get().idle_timeouts.inc();
        net::send_all(client,
                      error_response_json(json_value(),
                                          "connection idle for too long; "
                                          "closing",
                                          "idle_timeout"));
        buffer.clear();  // never answer fragments after announcing a close
        break;
      }
    }
    const ssize_t n = ::read(client, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    if (buffer.empty()) partial_since = clock::now();
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline = 0;
    while (!peer_gone && !(single_request_ && answered) &&
           (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      partial_since = clock::now();  // the next line's budget starts now
      answer(std::move(line));
    }
    if (single_request_ && answered) break;
    if (buffer.size() > limits_.max_request_bytes) {
      // Hard cap on one pending request line: a peer streaming bytes
      // without ever sending a newline must cost bounded memory. Real
      // requests are a few hundred bytes; the largest sane grids are
      // well under the 4 MiB default.
      transport_metrics::get().oversized.inc();
      net::send_all(
          client,
          error_response_json(
              json_value(),
              "request line exceeds the " +
                  std::to_string(limits_.max_request_bytes) +
                  " byte limit; closing connection",
              "payload_too_large"));
      buffer.clear();
      break;
    }
    if (peer_gone) break;
  }
  // A final request without a trailing newline still gets its answer --
  // the stdio transport (std::getline) serves such scripts, and the two
  // transports promise identical behavior.
  if (!peer_gone && !buffer.empty() && !(single_request_ && answered)) {
    answer(std::move(buffer));
  }
  // Deregister before close so a reused fd number can never be confused
  // with this connection by a concurrent shutdown().
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (int& fd : clients_) {
      if (fd == client) {
        std::swap(fd, clients_.back());
        clients_.pop_back();
        break;
      }
    }
    --active_;
    transport_metrics::get().active.set(static_cast<double>(active_));
    idle_cv_.notify_all();
  }
  ::close(client);
}

}  // namespace nwdec::api
