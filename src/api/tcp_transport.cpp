#include "api/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "util/error.h"

namespace nwdec::api {

namespace {

// Full-buffer send; MSG_NOSIGNAL so a client that hung up surfaces as an
// error return instead of SIGPIPE. Returns false once the peer is gone.
bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

tcp_transport::tcp_transport(std::uint16_t port, int backlog,
                             int idle_timeout_ms)
    : idle_timeout_ms_(idle_timeout_ms) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw error("tcp_transport: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_ANY);
  address.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    ::close(listen_fd_);
    throw error("tcp_transport: cannot bind port " + std::to_string(port) +
                " (" + std::strerror(errno) + ")");
  }
  if (::listen(listen_fd_, backlog) != 0) {
    ::close(listen_fd_);
    throw error("tcp_transport: cannot listen on port " +
                std::to_string(port));
  }
  socklen_t length = sizeof(address);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                    &length) != 0) {
    ::close(listen_fd_);
    throw error("tcp_transport: cannot read the bound port");
  }
  port_ = ntohs(address.sin_port);

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    ::close(listen_fd_);
    throw error("tcp_transport: cannot create the shutdown pipe");
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
}

tcp_transport::~tcp_transport() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

void tcp_transport::shutdown() {
  // One byte on the wake pipe; write() is async-signal-safe, so signal
  // handlers can do exactly this through shutdown_fd().
  const char wake = 'x';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_, &wake, 1);
}

int tcp_transport::serve(line_handler& handler) {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // shutdown requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    {
      // Register before the thread exists so serve()'s drain barrier can
      // never miss a connection that is about to start.
      const std::lock_guard<std::mutex> lock(mutex_);
      clients_.push_back(client);
      ++active_;
    }
    std::thread([this, client, &handler] {
      serve_connection(client, handler);
    }).detach();
  }

  // Unblock every connection thread (their reads return 0), then wait for
  // the last one to deregister -- `handler` and `this` must outlive them.
  std::unique_lock<std::mutex> lock(mutex_);
  for (const int client : clients_) ::shutdown(client, SHUT_RDWR);
  idle_cv_.wait(lock, [this] { return active_ == 0; });
  return 0;
}

void tcp_transport::serve_connection(int client, line_handler& handler) {
  // Hard cap on one pending request line: the socket is unauthenticated,
  // so a peer streaming bytes without ever sending a newline must cost
  // bounded memory -- past the cap it gets an error line and the
  // connection closes. Real requests are a few hundred bytes; the largest
  // sane grids are well under this.
  constexpr std::size_t max_line_bytes = std::size_t{4} << 20;  // 4 MiB
  std::string buffer;
  char chunk[4096];
  bool peer_gone = false;
  bool answered = false;
  const auto answer = [&](std::string line) {
    if (!line.empty() && line.back() == '\r') line.pop_back();  // nc/telnet
    if (line.empty()) return;
    if (!send_all(client, handler.handle_line(line))) peer_gone = true;
    answered = true;
  };
  for (;;) {
    if (idle_timeout_ms_ > 0) {
      // Bound how long a silent peer may hold this connection thread (and
      // its fd): poll before blocking in read, and on expiry say why the
      // connection is closing -- a client stuck mid-request deserves a
      // diagnosis, not a silent RST.
      pollfd waiting{client, POLLIN, 0};
      const int ready = ::poll(&waiting, 1, idle_timeout_ms_);
      if (ready < 0 && errno == EINTR) continue;
      if (ready == 0) {
        send_all(client,
                 "{\"id\":null,\"ok\":false,\"error\":\"connection idle for "
                 "too long; closing\",\"code\":\"idle_timeout\"}\n");
        break;
      }
      if (ready < 0) break;
    }
    const ssize_t n = ::read(client, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline = 0;
    while (!peer_gone && !(single_request_ && answered) &&
           (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      answer(std::move(line));
    }
    if (single_request_ && answered) break;
    if (buffer.size() > max_line_bytes) {
      send_all(client,
               "{\"id\":null,\"ok\":false,\"error\":\"request line exceeds "
               "the 4 MiB limit; closing connection\"}\n");
      buffer.clear();
      break;
    }
    if (peer_gone) break;
  }
  // A final request without a trailing newline still gets its answer --
  // the stdio transport (std::getline) serves such scripts, and the two
  // transports promise identical behavior.
  if (!peer_gone && !buffer.empty() && !(single_request_ && answered)) {
    answer(std::move(buffer));
  }
  // Deregister before close so a reused fd number can never be confused
  // with this connection by a concurrent shutdown().
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (int& fd : clients_) {
      if (fd == client) {
        std::swap(fd, clients_.back());
        clients_.pop_back();
        break;
      }
    }
    --active_;
    if (active_ == 0) idle_cv_.notify_all();
  }
  ::close(client);
}

}  // namespace nwdec::api
