#include "api/types.h"

#include <cmath>

#include "util/error.h"

namespace nwdec::api {

namespace {

std::size_t as_size(const json_value& node, const std::string& what) {
  const double value = node.as_number();
  NWDEC_EXPECTS(value >= 0.0 && std::floor(value) == value &&
                    value <= 9007199254740992.0,  // 2^53
                "'" + what + "' must be a non-negative integer");
  return static_cast<std::size_t>(value);
}

std::size_t get_size_or(const json_value& request, const std::string& name,
                        std::size_t fallback) {
  const json_value* found = request.find(name);
  return found == nullptr ? fallback : as_size(*found, name);
}

double get_number_or(const json_value& request, const std::string& name,
                     double fallback) {
  const json_value* found = request.find(name);
  return found == nullptr ? fallback : found->as_number();
}

bool get_bool_or(const json_value& request, const std::string& name,
                 bool fallback) {
  const json_value* found = request.find(name);
  return found == nullptr ? fallback : found->as_bool();
}

request_header parse_header(const json_value& root) {
  request_header header;
  if (const json_value* found = root.find("id")) header.client_id = *found;
  header.async_submit = get_bool_or(root, "async", false);
  if (const json_value* found = root.find("priority")) {
    const double value = found->as_number();
    NWDEC_EXPECTS(std::floor(value) == value && value >= -1e6 && value <= 1e6,
                  "'priority' must be an integer in [-1e6, 1e6]");
    header.priority = static_cast<int>(value);
  }
  header.timeout_ms = get_size_or(root, "timeout_ms", 0);
  // Cap at 24h: keeps the deadline arithmetic trivially overflow-free and
  // rejects garbage (a u64-max "timeout" is a client bug, not a wish).
  NWDEC_EXPECTS(header.timeout_ms <= 86'400'000,
                "'timeout_ms' must be at most 86400000 (24 hours)");
  if (const json_value* found = root.find("request_id")) {
    header.request_id = found->as_string();
    // Visible-ASCII-only, bounded: the key is compared byte for byte and
    // echoed into diagnostics, so control bytes and unbounded blobs are
    // client bugs worth rejecting at the door.
    NWDEC_EXPECTS(!header.request_id.empty() &&
                      header.request_id.size() <= 128,
                  "'request_id' must be 1..128 characters");
    for (const char c : header.request_id) {
      NWDEC_EXPECTS(c >= 0x21 && c <= 0x7e,
                    "'request_id' must be visible ASCII (0x21..0x7e)");
    }
  }
  return header;
}

fab::defect_params parse_defects(const json_value& root) {
  const fab::defect_params defects{get_number_or(root, "broken", 0.0),
                                   get_number_or(root, "bridge", 0.0)};
  // Validate before anything downstream: a negative rate is a client bug
  // worth an error response, not a silent defect-free sweep.
  defects.validate();
  return defects;
}

sweep_request parse_sweep(const json_value& root) {
  sweep_request parsed;
  parsed.header = parse_header(root);
  parsed.radix = static_cast<unsigned>(get_size_or(root, "radix", 2));
  for (const json_value& name : root.at("codes").items()) {
    parsed.codes.push_back(codes::parse_code_type(name.as_string()));
  }
  for (const json_value& length : root.at("lengths").items()) {
    parsed.lengths.push_back(as_size(length, "lengths"));
  }
  if (const json_value* nanowires = root.find("nanowires")) {
    for (const json_value& n : nanowires->items()) {
      parsed.nanowires.push_back(as_size(n, "nanowires"));
    }
  }
  if (const json_value* sigmas = root.find("sigmas_vt")) {
    for (const json_value& sigma : sigmas->items()) {
      NWDEC_EXPECTS(sigma.as_number() >= 0.0,
                    "'sigmas_vt' values cannot be negative");
      parsed.sigmas_vt.push_back(sigma.as_number());
    }
  }
  parsed.trials = get_size_or(root, "trials", 0);
  parsed.defects = parse_defects(root);
  parsed.min_half_width = get_number_or(root, "min_half_width", 0.0);
  NWDEC_EXPECTS(
      parsed.min_half_width >= 0.0 && parsed.min_half_width < 1.0,
      "'min_half_width' must lie in [0, 1)");
  NWDEC_EXPECTS(!parsed.codes.empty() && !parsed.lengths.empty(),
                "a sweep request needs at least one code and length");
  return parsed;
}

refine_request parse_refine(const json_value& root) {
  refine_request parsed;
  parsed.header = parse_header(root);
  service::refine_request& refinement = parsed.refinement;
  refinement.design.type =
      codes::parse_code_type(root.at("code").as_string());
  refinement.design.radix =
      static_cast<unsigned>(get_size_or(root, "radix", 2));
  refinement.design.length = as_size(root.at("length"), "length");
  refinement.nanowires = get_size_or(root, "nanowires", 0);
  refinement.mc_trials = get_size_or(root, "trials", 0);
  const fab::defect_params defects = parse_defects(root);
  if (defects.broken_probability != 0.0 ||
      defects.bridge_probability != 0.0) {
    refinement.defects = defects;
  }
  refinement.sigma_low = root.at("sigma_low").as_number();
  refinement.sigma_high = root.at("sigma_high").as_number();
  refinement.yield_threshold = get_number_or(root, "threshold", 0.5);
  refinement.resolution = get_number_or(root, "resolution", 1e-3);
  return parsed;
}

std::uint64_t parse_job_id(const json_value& root) {
  return static_cast<std::uint64_t>(as_size(root.at("job"), "job"));
}

}  // namespace

core::sweep_axes sweep_request::axes() const {
  NWDEC_EXPECTS(!codes.empty() && !lengths.empty(),
                "a sweep request needs at least one code and length");
  core::sweep_axes axes;
  for (const codes::code_type type : codes) {
    for (const std::size_t length : lengths) {
      axes.designs.push_back({type, radix, length});
    }
  }
  axes.nanowires = nanowires;
  axes.sigmas_vt = sigmas_vt;
  axes.mc_trials = trials;
  if (defects.broken_probability != 0.0 ||
      defects.bridge_probability != 0.0) {
    axes.defects.push_back(defects);
  }
  return axes;
}

const char* kind_name(const request& parsed) {
  struct visitor {
    const char* operator()(const sweep_request&) const { return "sweep"; }
    const char* operator()(const refine_request&) const { return "refine"; }
    const char* operator()(const status_request&) const { return "status"; }
    const char* operator()(const cancel_request&) const { return "cancel"; }
    const char* operator()(const stats_request&) const { return "stats"; }
    const char* operator()(const flush_request&) const { return "flush"; }
    const char* operator()(const metrics_request&) const { return "metrics"; }
    const char* operator()(const subscribe_request&) const {
      return "subscribe";
    }
  };
  return std::visit(visitor{}, parsed);
}

const request_header& header_of(const request& parsed) {
  return std::visit(
      [](const auto& r) -> const request_header& { return r.header; },
      parsed);
}

request parse_request(const json_value& root) {
  NWDEC_EXPECTS(root.is_object(), "a request must be a JSON object");
  const std::string kind = root.at("kind").as_string();
  if (kind == "sweep") return parse_sweep(root);
  if (kind == "refine") return parse_refine(root);
  if (kind == "status") {
    status_request parsed;
    parsed.header = parse_header(root);
    parsed.job = parse_job_id(root);
    parsed.wait = get_bool_or(root, "wait", false);
    return parsed;
  }
  if (kind == "cancel") {
    cancel_request parsed;
    parsed.header = parse_header(root);
    parsed.job = parse_job_id(root);
    return parsed;
  }
  if (kind == "stats") {
    stats_request parsed;
    parsed.header = parse_header(root);
    parsed.detail = get_bool_or(root, "detail", false);
    return parsed;
  }
  if (kind == "flush") {
    flush_request parsed;
    parsed.header = parse_header(root);
    parsed.clear = get_bool_or(root, "clear", false);
    return parsed;
  }
  if (kind == "metrics") {
    metrics_request parsed;
    parsed.header = parse_header(root);
    return parsed;
  }
  if (kind == "subscribe") {
    subscribe_request parsed;
    parsed.header = parse_header(root);
    parsed.job = parse_job_id(root);
    parsed.from_seq = get_size_or(root, "from", 0);
    return parsed;
  }
  throw invalid_argument_error(
      "unknown request kind '" + kind +
      "' (expected sweep | refine | status | cancel | stats | flush | "
      "metrics | subscribe)");
}

request parse_request_line(const std::string& line) {
  return parse_request(json_parse(line));
}

namespace {

// Canonical wire form: "id"/"kind" lead, default-valued optional members
// are omitted, axes keep the client's element order.
void write_header(json_writer& json, const request_header& header,
                  const char* kind) {
  json.key("id").value(header.client_id);
  json.field("kind", kind);
  if (header.async_submit) json.field("async", true);
  if (header.priority != 0) json.field("priority", header.priority);
  if (header.timeout_ms != 0) json.field("timeout_ms", header.timeout_ms);
  if (!header.request_id.empty()) {
    json.field("request_id", header.request_id);
  }
}

void write_defects(json_writer& json, const fab::defect_params& defects) {
  if (defects.broken_probability != 0.0) {
    json.field("broken", defects.broken_probability);
  }
  if (defects.bridge_probability != 0.0) {
    json.field("bridge", defects.bridge_probability);
  }
}

struct request_writer {
  json_writer& json;

  void operator()(const sweep_request& r) const {
    write_header(json, r.header, "sweep");
    json.key("codes").begin_array();
    for (const codes::code_type type : r.codes) {
      json.value(codes::code_type_name(type));
    }
    json.end_array();
    if (r.radix != 2) json.field("radix", r.radix);
    json.key("lengths").begin_array();
    for (const std::size_t length : r.lengths) json.value(length);
    json.end_array();
    if (!r.nanowires.empty()) {
      json.key("nanowires").begin_array();
      for (const std::size_t n : r.nanowires) json.value(n);
      json.end_array();
    }
    if (!r.sigmas_vt.empty()) {
      json.key("sigmas_vt").begin_array();
      for (const double sigma : r.sigmas_vt) json.value(sigma);
      json.end_array();
    }
    if (r.trials != 0) json.field("trials", r.trials);
    write_defects(json, r.defects);
    if (r.min_half_width != 0.0) {
      json.field("min_half_width", r.min_half_width);
    }
  }

  void operator()(const refine_request& r) const {
    write_header(json, r.header, "refine");
    const service::refine_request& refinement = r.refinement;
    json.field("code", codes::code_type_name(refinement.design.type));
    if (refinement.design.radix != 2) {
      json.field("radix", refinement.design.radix);
    }
    json.field("length", refinement.design.length);
    if (refinement.nanowires != 0) {
      json.field("nanowires", refinement.nanowires);
    }
    if (refinement.mc_trials != 0) json.field("trials", refinement.mc_trials);
    write_defects(json, refinement.defects.value_or(fab::defect_params{}));
    json.field("sigma_low", refinement.sigma_low)
        .field("sigma_high", refinement.sigma_high);
    if (refinement.yield_threshold != 0.5) {
      json.field("threshold", refinement.yield_threshold);
    }
    if (refinement.resolution != 1e-3) {
      json.field("resolution", refinement.resolution);
    }
  }

  void operator()(const status_request& r) const {
    write_header(json, r.header, "status");
    json.field("job", r.job);
    if (r.wait) json.field("wait", true);
  }

  void operator()(const cancel_request& r) const {
    write_header(json, r.header, "cancel");
    json.field("job", r.job);
  }

  void operator()(const stats_request& r) const {
    write_header(json, r.header, "stats");
    if (r.detail) json.field("detail", true);
  }

  void operator()(const flush_request& r) const {
    write_header(json, r.header, "flush");
    if (r.clear) json.field("clear", true);
  }

  void operator()(const metrics_request& r) const {
    write_header(json, r.header, "metrics");
  }

  void operator()(const subscribe_request& r) const {
    write_header(json, r.header, "subscribe");
    json.field("job", r.job);
    if (r.from_seq != 0) json.field("from", r.from_seq);
  }
};

}  // namespace

void write_request(json_writer& json, const request& parsed) {
  json.begin_object();
  std::visit(request_writer{json}, parsed);
  json.end_object();
}

std::string to_json(const request& parsed, json_writer::style style) {
  json_writer json(style);
  write_request(json, parsed);
  return json.str();
}

}  // namespace nwdec::api
