// api::http -- a minimal, allocation-conscious HTTP/1.1 message layer:
// an incremental request parser plus response assembly. No sockets here;
// http_transport owns the I/O and feeds bytes in as they arrive, so the
// parser must accept arbitrary split points (a request head fragmented
// across reads, pipelined requests arriving in one).
//
// Deliberately small surface: origin-form targets, Content-Length bodies
// only (Transfer-Encoding is refused with 411 -- the service's request
// bodies are NDJSON lines whose size the client always knows), bare-LF
// tolerance on header lines, and a hard byte cap shared with the raw
// NDJSON transport's max_request_bytes.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace nwdec::api::http {

/// One parsed request. Header names are matched case-insensitively by
/// header(); values are returned with surrounding whitespace trimmed.
struct request {
  std::string method;   ///< uppercase on the wire ("GET", "POST", ...)
  std::string target;   ///< origin-form, query string included
  std::string version;  ///< "HTTP/1.1" (or "HTTP/1.0")
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Connection semantics after this exchange: HTTP/1.1 defaults to
  /// keep-alive unless "Connection: close"; HTTP/1.0 defaults to close
  /// unless "Connection: keep-alive".
  bool keep_alive = true;

  /// First value of a header, matched case-insensitively; "" when absent.
  std::string header(const std::string& name) const;
  /// The target's path, query string stripped ("/v1/rpc?x=1" -> "/v1/rpc").
  std::string path() const;
  /// A query parameter's (percent-decoding-free) value; "" when absent.
  std::string query_param(const std::string& name) const;
};

/// Incremental request parser. Feed bytes with consume(); once state()
/// is complete, take result() and reset() -- leftover bytes past the
/// request (pipelining) carry over into the next cycle. A failed parse
/// reports the HTTP status to answer with (400/411/413/505) and a
/// one-line reason; the connection must close after answering.
class request_parser {
 public:
  enum class phase { head, body, complete, failed };

  /// `max_bytes` bounds the whole request (head + body), sharing the
  /// transport's max_request_bytes budget; 0 = unbounded.
  explicit request_parser(std::size_t max_bytes);

  /// Appends bytes and advances the parse as far as they allow.
  phase consume(const char* data, std::size_t size);

  phase state() const { return phase_; }
  /// True while NO byte of the next request has arrived -- the idle/
  /// read-deadline boundary, exactly like the NDJSON transport's "blank
  /// line buffer" condition.
  bool idle() const { return phase_ == phase::head && buffer_.empty(); }

  /// The parsed request; valid only in phase::complete.
  const request& result() const { return parsed_; }

  /// Failure verdict; valid only in phase::failed.
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  /// Clears the completed/failed request and re-parses any leftover
  /// pipelined bytes (so state() may be complete again immediately).
  void reset();

 private:
  void advance();
  void fail(int status, std::string reason);
  bool parse_head(std::size_t head_end);

  std::size_t max_bytes_;
  std::string buffer_;
  phase phase_ = phase::head;
  request parsed_;
  std::size_t body_needed_ = 0;
  int error_status_ = 0;
  std::string error_reason_;
};

/// Assembles a complete response: status line, Content-Type /
/// Content-Length, any extra headers (each "Name: value", no CRLF), the
/// Connection header matching `keep_alive`, then the body.
std::string response(int status, const std::string& content_type,
                     const std::string& body, bool keep_alive,
                     const std::vector<std::string>& extra_headers = {});

/// "OK", "Bad Request", ... (a small table; unknown codes say "Status").
const char* reason_phrase(int status);

/// Maps a dispatcher response's error "code" (the vocabulary documented
/// at error_response_json) to the HTTP status the gateway answers with:
/// ok -> 200; overloaded / draining / too_many_connections -> 503;
/// payload_too_large -> 413; read_timeout / idle_timeout -> 408;
/// timed_out -> 504; request_id_conflict -> 409; any other error -> 400.
int status_for_code(const std::string& code, bool ok);

}  // namespace nwdec::api::http
