#include "api/chaos_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/error.h"
#include "util/failpoint.h"
#include "util/net.h"

namespace nwdec::api {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// True when the (armed) failpoint fires -- the error action becomes a
/// "inject the fault here" signal instead of an exception.
bool failpoint_fires(const char* name) {
  try {
    NWDEC_FAILPOINT(name);
  } catch (const std::exception&) {
    return true;
  }
  return false;
}

}  // namespace

chaos_transport::chaos_transport(chaos_options options)
    : options_(std::move(options)) {
  upstream_port_.store(options_.upstream_port, std::memory_order_relaxed);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw error("chaos_transport: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_ANY);
  address.sin_port = htons(options_.listen_port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    ::close(listen_fd_);
    throw error("chaos_transport: cannot bind port " +
                std::to_string(options_.listen_port));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw error("chaos_transport: cannot listen");
  }
  socklen_t length = sizeof(address);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                    &length) != 0) {
    ::close(listen_fd_);
    throw error("chaos_transport: cannot read the bound port");
  }
  port_ = ntohs(address.sin_port);
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    ::close(listen_fd_);
    throw error("chaos_transport: cannot create the wake pipe");
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
}

chaos_transport::~chaos_transport() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

void chaos_transport::start() {
  if (accept_thread_.joinable()) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void chaos_transport::stop() {
  if (!accept_thread_.joinable()) return;
  stopping_.store(true, std::memory_order_relaxed);
  const char wake = 'x';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_, &wake, 1);
  accept_thread_.join();
  std::unique_lock<std::mutex> lock(mutex_);
  for (const int fd : fds_) ::shutdown(fd, SHUT_RDWR);
  idle_cv_.wait(lock, [this] { return active_ == 0; });
  stopping_.store(false, std::memory_order_relaxed);
}

chaos_stats chaos_transport::stats() const {
  chaos_stats out;
  out.connections = connections_.load(std::memory_order_relaxed);
  out.resets = resets_.load(std::memory_order_relaxed);
  out.truncations = truncations_.load(std::memory_order_relaxed);
  out.delayed_chunks = delayed_chunks_.load(std::memory_order_relaxed);
  return out;
}

void chaos_transport::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // stop requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    const std::uint64_t index =
        connections_.fetch_add(1, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++active_;
    }
    std::thread([this, client, index] {
      pump(client, mix64(options_.seed ^ (index + 1)));
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      idle_cv_.notify_all();
    }).detach();
  }
}

void chaos_transport::reset_pair(int client, int upstream) {
  // SO_LINGER 0 turns close() into an RST, so the peers see a genuine
  // connection reset (ECONNRESET on their next read/write), not a polite
  // EOF that could be mistaken for end-of-stream.
  const linger hard{1, 0};
  ::setsockopt(client, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  ::close(client);
  if (upstream >= 0) {
    ::setsockopt(upstream, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    ::close(upstream);
  }
  resets_.fetch_add(1, std::memory_order_relaxed);
}

void chaos_transport::deregister(int client, int upstream) {
  const std::lock_guard<std::mutex> lock(mutex_);
  fds_.erase(std::remove_if(fds_.begin(), fds_.end(),
                            [&](int fd) {
                              return fd == client || fd == upstream;
                            }),
             fds_.end());
}

void chaos_transport::pump(int client, std::uint64_t connection_seed) {
  std::uint64_t rng = connection_seed;
  const auto chance = [&](double probability) {
    if (probability <= 0.0) return false;
    rng = mix64(rng);
    return (static_cast<double>(rng >> 11) /
            static_cast<double>(1ULL << 53)) < probability;
  };
  const auto uniform_ms = [&](int max_ms) {
    rng = mix64(rng);
    return static_cast<int>(rng % static_cast<std::uint64_t>(max_ms + 1));
  };

  if (failpoint_fires("chaos.connect.upstream")) {
    reset_pair(client, -1);
    return;
  }
  const int upstream = net::connect_tcp(
      options_.upstream_host,
      upstream_port_.load(std::memory_order_relaxed), 2000);
  if (upstream < 0) {
    // No daemon behind us: the client observes exactly what a dead
    // server looks like (reset on arrival).
    reset_pair(client, -1);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    fds_.push_back(client);
    fds_.push_back(upstream);
  }

  // Orderly teardown (peer hung up / stop requested): no RST, just
  // deregister and close both sides.
  const auto teardown = [&] {
    deregister(client, upstream);
    ::close(client);
    ::close(upstream);
  };

  // Forward one chunk with the configured mischief; false = the pair is
  // torn down (reset by us, or a peer is gone) -- sockets are closed.
  const auto forward = [&](int from, int to, const char* marker) {
    char chunk[4096];
    const ssize_t n = ::read(from, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) return true;
    if (n <= 0) {
      teardown();
      return false;
    }
    std::size_t length = static_cast<std::size_t>(n);
    if (failpoint_fires(marker) || chance(options_.reset_probability)) {
      deregister(client, upstream);
      reset_pair(client, upstream);
      return false;
    }
    if (chance(options_.truncate_probability)) {
      // A prefix leaks through, then the wire dies: the hardest case
      // for a peer's framing (partial line, then reset).
      rng = mix64(rng);
      length = static_cast<std::size_t>(rng % (length + 1));
      truncations_.fetch_add(1, std::memory_order_relaxed);
      if (length > 0) net::send_all(to, chunk, length);
      deregister(client, upstream);
      reset_pair(client, upstream);
      return false;
    }
    if (options_.max_latency_ms > 0) {
      delayed_chunks_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(uniform_ms(options_.max_latency_ms)));
    }
    const std::size_t piece = options_.max_write_bytes > 0
                                  ? options_.max_write_bytes
                                  : length;
    for (std::size_t offset = 0; offset < length; offset += piece) {
      if (!net::send_all(to, chunk + offset,
                         std::min(piece, length - offset))) {
        teardown();
        return false;
      }
    }
    return true;
  };

  for (;;) {
    if (stopping_.load(std::memory_order_relaxed)) break;
    pollfd fds[2] = {{client, POLLIN, 0}, {upstream, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      if (!forward(client, upstream, "chaos.forward.request")) return;
    }
    if ((fds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      if (!forward(upstream, client, "chaos.forward.response")) return;
    }
  }
  teardown();
}

}  // namespace nwdec::api
