// api::tcp_transport: the socket front end of the nwdec service.
//
// Listens on a TCP port (IPv4 loopback-or-any, SO_REUSEADDR) and serves
// any number of concurrent connections, one thread per connection. Each
// connection speaks the same NDJSON protocol as stdin/stdout: one request
// per line, one response line per request, written in that connection's
// request order (concurrency across connections comes from the job
// scheduler underneath, so two clients' sweep jobs coalesce into one
// engine run). Responses are byte-identical to the stdio transport's --
// the dispatcher is shared and the CI smoke diffs the two.
//
// Self-protection (tcp_limits): the socket is unauthenticated, so every
// per-connection resource is bounded and every bound closes with a
// machine-readable error line (never a silent RST):
//   * idle_timeout_ms  -- a peer that sends no bytes for this long gets
//     "code": "idle_timeout" and the connection closes;
//   * read_deadline_ms -- a peer that starts a request line but never
//     finishes it (slowloris: one byte per poll keeps the idle clock
//     happy forever) gets "code": "read_timeout" once the partial line is
//     this old;
//   * max_request_bytes -- a request line past this many bytes gets
//     "code": "payload_too_large" (bounded memory per connection);
//   * max_connections  -- an accept past this many live connections is
//     answered "code": "too_many_connections" and closed immediately
//     (bounded threads/fds; the client retries after backoff).
//
// Shutdown: shutdown() (thread-safe, idempotent) stops the accept loop,
// unblocks every connection, and makes serve() return after joining the
// connection threads. shutdown_fd() exposes the write end of the internal
// wake pipe so a signal handler can request the same with a single
// async-signal-safe write(). With drain_ms > 0 shutdown is graceful:
// serve() first half-closes every connection (SHUT_RD -- buffered and
// in-flight requests still get their responses) and waits up to drain_ms
// for them to finish before force-closing the stragglers; the optional
// drain-deadline action (the daemon wires it to cancel outstanding jobs)
// runs when the window expires so a stuck evaluation cannot pin the
// process past its drain budget.
//
//   $ nwdec_service --listen 4750 &
//   $ printf '%s\n' '{"id":1,"kind":"sweep","codes":["BGC"],
//       "lengths":[10],"trials":150}' | nc 127.0.0.1 4750
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "api/transport.h"

namespace nwdec::api {

/// Per-connection resource bounds (see the header comment for the error
/// code each bound answers with). The defaults keep the PR 4 behavior:
/// no timeouts, no connection cap, a 4 MiB line cap, immediate shutdown.
struct tcp_limits {
  /// Close a connection that sends no bytes for this long (0 = never).
  int idle_timeout_ms = 0;
  /// Close a connection whose partial request line is this old (0 =
  /// never). Defeats slowloris peers that dribble bytes forever.
  int read_deadline_ms = 0;
  /// Error out a request line past this many bytes.
  std::size_t max_request_bytes = std::size_t{4} << 20;  // 4 MiB
  /// Shed accepts past this many live connections (0 = unbounded).
  std::size_t max_connections = 0;
  /// Graceful-drain window on shutdown: half-close connections, wait
  /// this long for in-flight requests to finish, then force-close
  /// (0 = force-close immediately, the PR 4 behavior).
  int drain_ms = 0;
};

class tcp_transport final : public transport {
 public:
  /// Binds and listens immediately (so port() is valid before serve());
  /// port 0 picks an ephemeral port. Throws nwdec::error on any socket
  /// failure.
  explicit tcp_transport(std::uint16_t port, int backlog = 64,
                         int idle_timeout_ms = 0);
  tcp_transport(std::uint16_t port, int backlog, tcp_limits limits);
  ~tcp_transport() override;
  tcp_transport(const tcp_transport&) = delete;
  tcp_transport& operator=(const tcp_transport&) = delete;

  /// The bound port (the ephemeral pick when constructed with 0).
  std::uint16_t port() const { return port_; }

  /// Accept loop; returns 0 after shutdown() completes it.
  int serve(line_handler& handler) override;

  /// Requests serve() to stop; safe from any thread, idempotent.
  void shutdown();

  /// Write end of the shutdown wake pipe: write(shutdown_fd(), "x", 1)
  /// is the async-signal-safe equivalent of shutdown() for use inside a
  /// signal handler.
  int shutdown_fd() const { return wake_write_; }

  /// Single-request mode: each connection is answered once -- the first
  /// non-empty line gets its response, then the connection closes
  /// (remaining buffered lines are dropped). This is the HTTP-style
  /// request/response discipline the --metrics-port listener serves
  /// (api/metrics_http.h): curl's headers after the request line are
  /// ignored instead of answered as garbage. Set before serve().
  void set_single_request(bool on) { single_request_ = on; }

  /// Runs when the drain window expires with connections still busy --
  /// before they are force-closed. The daemon points this at the
  /// scheduler's cancel_all() so a connection thread blocked inside a
  /// long synchronous evaluation is released cooperatively (a force-
  /// closed socket alone cannot unblock a thread waiting on a job).
  /// Set before serve(); called without transport locks held.
  void set_drain_deadline_action(std::function<void()> action) {
    drain_deadline_action_ = std::move(action);
  }

 private:
  void serve_connection(int client, line_handler& handler);

  int listen_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::uint16_t port_ = 0;
  tcp_limits limits_;
  bool single_request_ = false;  ///< close after the first answered line
  std::function<void()> drain_deadline_action_;

  // Connection threads run detached (a long-lived daemon must not hoard
  // one joinable thread per connection ever served); serve() instead
  // counts them and blocks on idle_cv_ until the last one deregisters.
  std::mutex mutex_;  ///< guards clients_ and active_
  std::condition_variable idle_cv_;
  std::vector<int> clients_;
  std::size_t active_ = 0;
};

}  // namespace nwdec::api
