// api::tcp_transport: the raw NDJSON socket front end of the nwdec
// service, built on the socket_server chassis (bind/listen, accept loop,
// shutdown pipe, connection bookkeeping, graceful drain -- see
// api/socket_server.h; the HTTP gateway shares the same chassis).
//
// Each connection speaks the same NDJSON protocol as stdin/stdout: one
// request per line, one response line per request, written in that
// connection's request order (concurrency across connections comes from
// the job scheduler underneath, so two clients' sweep jobs coalesce into
// one engine run). A "subscribe" request switches the connection to push
// delivery: the dispatcher keeps writing job lifecycle event lines until
// the stream ends. Responses are byte-identical to the stdio
// transport's -- the dispatcher is shared and the CI smoke diffs the two.
//
// Self-protection (tcp_limits, shared with the chassis): the socket is
// unauthenticated, so every per-connection resource is bounded and every
// bound closes with a machine-readable error line (never a silent RST):
//   * idle_timeout_ms  -- a peer that sends no bytes for this long gets
//     "code": "idle_timeout" and the connection closes;
//   * read_deadline_ms -- a peer that starts a request line but never
//     finishes it (slowloris: one byte per poll keeps the idle clock
//     happy forever) gets "code": "read_timeout" once the partial line is
//     this old;
//   * max_request_bytes -- a request line past this many bytes gets
//     "code": "payload_too_large" (bounded memory per connection);
//   * max_connections  -- an accept past this many live connections is
//     answered "code": "too_many_connections" and closed immediately
//     (bounded threads/fds; the client retries after backoff).
//
// Shutdown: shutdown() (thread-safe, idempotent) stops the accept loop,
// unblocks every connection, and makes serve() return after the
// connection threads deregister; with drain_ms > 0 in-flight requests
// first get a grace window (socket_server semantics).
//
//   $ nwdec_service --listen 4750 &
//   $ printf '%s\n' '{"id":1,"kind":"sweep","codes":["BGC"],
//       "lengths":[10],"trials":150}' | nc 127.0.0.1 4750
#pragma once

#include <cstdint>

#include "api/socket_server.h"

namespace nwdec::api {

class tcp_transport final : public socket_server {
 public:
  explicit tcp_transport(std::uint16_t port, int backlog = 64,
                         int idle_timeout_ms = 0);
  tcp_transport(std::uint16_t port, int backlog, tcp_limits limits);

  /// Single-request mode: each connection is answered once -- the first
  /// non-empty line gets its response, then the connection closes
  /// (remaining buffered lines are dropped). This was the --metrics-port
  /// discipline before the HTTP gateway existed; tests still exercise
  /// it. Set before serve().
  void set_single_request(bool on) { single_request_ = on; }

 protected:
  void serve_connection(int client, line_handler& handler) override;
  std::string shed_response() const override;

 private:
  bool single_request_ = false;  ///< close after the first answered line
};

}  // namespace nwdec::api
