// api::tcp_transport: the socket front end of the nwdec service.
//
// Listens on a TCP port (IPv4 loopback-or-any, SO_REUSEADDR) and serves
// any number of concurrent connections, one thread per connection. Each
// connection speaks the same NDJSON protocol as stdin/stdout: one request
// per line, one response line per request, written in that connection's
// request order (concurrency across connections comes from the job
// scheduler underneath, so two clients' sweep jobs coalesce into one
// engine run). Responses are byte-identical to the stdio transport's --
// the dispatcher is shared and the CI smoke diffs the two.
//
// Shutdown: shutdown() (thread-safe, idempotent) stops the accept loop,
// unblocks every connection, and makes serve() return after joining the
// connection threads. shutdown_fd() exposes the write end of the internal
// wake pipe so a signal handler can request the same with a single
// async-signal-safe write().
//
//   $ nwdec_service --listen 4750 &
//   $ printf '%s\n' '{"id":1,"kind":"sweep","codes":["BGC"],
//       "lengths":[10],"trials":150}' | nc 127.0.0.1 4750
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "api/transport.h"

namespace nwdec::api {

class tcp_transport final : public transport {
 public:
  /// Binds and listens immediately (so port() is valid before serve());
  /// port 0 picks an ephemeral port. Throws nwdec::error on any socket
  /// failure. idle_timeout_ms > 0 closes a connection that sends no bytes
  /// for that long (after one final "code": "idle_timeout" error line), so
  /// silent peers cannot pin connection threads forever; 0 disables.
  explicit tcp_transport(std::uint16_t port, int backlog = 64,
                         int idle_timeout_ms = 0);
  ~tcp_transport() override;
  tcp_transport(const tcp_transport&) = delete;
  tcp_transport& operator=(const tcp_transport&) = delete;

  /// The bound port (the ephemeral pick when constructed with 0).
  std::uint16_t port() const { return port_; }

  /// Accept loop; returns 0 after shutdown() completes it.
  int serve(line_handler& handler) override;

  /// Requests serve() to stop; safe from any thread, idempotent.
  void shutdown();

  /// Write end of the shutdown wake pipe: write(shutdown_fd(), "x", 1)
  /// is the async-signal-safe equivalent of shutdown() for use inside a
  /// signal handler.
  int shutdown_fd() const { return wake_write_; }

  /// Single-request mode: each connection is answered once -- the first
  /// non-empty line gets its response, then the connection closes
  /// (remaining buffered lines are dropped). This is the HTTP-style
  /// request/response discipline the --metrics-port listener serves
  /// (api/metrics_http.h): curl's headers after the request line are
  /// ignored instead of answered as garbage. Set before serve().
  void set_single_request(bool on) { single_request_ = on; }

 private:
  void serve_connection(int client, line_handler& handler);

  int listen_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::uint16_t port_ = 0;
  int idle_timeout_ms_ = 0;  ///< 0 = never time out idle connections
  bool single_request_ = false;  ///< close after the first answered line

  // Connection threads run detached (a long-lived daemon must not hoard
  // one joinable thread per connection ever served); serve() instead
  // counts them and blocks on idle_cv_ until the last one deregisters.
  std::mutex mutex_;  ///< guards clients_ and active_
  std::condition_variable idle_cv_;
  std::vector<int> clients_;
  std::size_t active_ = 0;
};

}  // namespace nwdec::api
