#include "api/socket_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "api/transport_metrics.h"
#include "util/error.h"
#include "util/log.h"
#include "util/net.h"

namespace nwdec::api {

socket_server::socket_server(std::uint16_t port, int backlog,
                             tcp_limits limits)
    : limits_(limits) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw error("socket_server: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_ANY);
  address.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    ::close(listen_fd_);
    throw error("socket_server: cannot bind port " + std::to_string(port) +
                " (" + std::strerror(errno) + ")");
  }
  if (::listen(listen_fd_, backlog) != 0) {
    ::close(listen_fd_);
    throw error("socket_server: cannot listen on port " +
                std::to_string(port));
  }
  socklen_t length = sizeof(address);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                    &length) != 0) {
    ::close(listen_fd_);
    throw error("socket_server: cannot read the bound port");
  }
  port_ = ntohs(address.sin_port);

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    ::close(listen_fd_);
    throw error("socket_server: cannot create the shutdown pipe");
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
}

socket_server::~socket_server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

void socket_server::shutdown() {
  // One byte on the wake pipe; write() is async-signal-safe, so signal
  // handlers can do exactly this through shutdown_fd().
  const char wake = 'x';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_, &wake, 1);
}

int socket_server::serve(line_handler& handler) {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // shutdown requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    {
      // Register before the thread exists so serve()'s drain barrier can
      // never miss a connection that is about to start.
      const std::lock_guard<std::mutex> lock(mutex_);
      if (limits_.max_connections > 0 &&
          active_ >= limits_.max_connections) {
        // Accept-shedding: past the cap every connection thread we could
        // start is one a hostile peer could pin, so answer with the
        // protocol's retry-on-a-fresh-connection response and close
        // inline -- the response is tiny, so the one blocking send here
        // cannot stall the accept loop the way serving would.
        transport_metrics::get().shed.inc();
        net::send_all(client, shed_response());
        ::close(client);
        continue;
      }
      clients_.push_back(client);
      ++active_;
      transport_metrics::get().accepted.inc();
      transport_metrics::get().active.set(static_cast<double>(active_));
    }
    std::thread([this, client, &handler] {
      serve_connection(client, handler);
      // Deregister before close so a reused fd number can never be
      // confused with this connection by a concurrent shutdown().
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (int& fd : clients_) {
          if (fd == client) {
            std::swap(fd, clients_.back());
            clients_.pop_back();
            break;
          }
        }
        --active_;
        transport_metrics::get().active.set(static_cast<double>(active_));
        idle_cv_.notify_all();
      }
      ::close(client);
    }).detach();
  }

  // Shutdown observed: flip the drain flag and run the start action
  // BEFORE half-closing anything, so connection loops that poll
  // draining() (SSE pumps) and subscribers parked on event streams are
  // released into the same drain window as ordinary requests.
  draining_.store(true, std::memory_order_relaxed);
  if (drain_start_action_) drain_start_action_();

  std::unique_lock<std::mutex> lock(mutex_);
  if (limits_.drain_ms > 0 && active_ > 0) {
    // Graceful drain: half-close every connection -- their reads return
    // 0, so each thread answers what it already buffered and exits --
    // and give in-flight requests up to drain_ms to finish before the
    // hard close below. Responses still flow during the window (only
    // the read side is shut).
    transport_metrics::get().drains.inc();
    logging::event(logging::level::info, "tcp", "draining")
        .field("connections", active_)
        .field("drain_ms", limits_.drain_ms);
    const auto drain_start = std::chrono::steady_clock::now();
    for (const int client : clients_) ::shutdown(client, SHUT_RD);
    idle_cv_.wait_for(lock, std::chrono::milliseconds(limits_.drain_ms),
                      [this] { return active_ == 0; });
    const std::size_t stragglers = active_;
    if (stragglers > 0) {
      transport_metrics::get().drain_forced.inc(stragglers);
      logging::event(logging::level::warn, "tcp", "drain_deadline")
          .field("forced", stragglers);
      if (drain_deadline_action_) {
        // A force-closed socket cannot unblock a thread waiting inside a
        // synchronous evaluation; the action (the daemon wires it to
        // cancel every outstanding job) releases those cooperatively.
        lock.unlock();
        drain_deadline_action_();
        lock.lock();
      }
    }
    transport_metrics::get().drain_seconds.set(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      drain_start)
            .count());
  }
  // Unblock every remaining connection thread (reads AND writes fail
  // from here), then wait for the last one to deregister -- `handler`
  // and `this` must outlive them.
  for (const int client : clients_) ::shutdown(client, SHUT_RDWR);
  idle_cv_.wait(lock, [this] { return active_ == 0; });
  return 0;
}

}  // namespace nwdec::api
