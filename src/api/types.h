// nwdec::api -- the typed request surface of the nwdec service.
//
// Every request the daemon accepts is one of the structs below; parsing
// from the NDJSON wire form and serializing back are centralized here, so
// protocol fields are named in exactly one place (the ad-hoc json_value
// plucking the PR 3 protocol_handler did is gone). parse_request and
// write_request are inverses: write(parse(write(x))) == write(x) byte for
// byte, and the round trip is tested.
//
// Request grammar (one JSON object per line; every request may carry
// "id" (echoed verbatim in the response), "async" (submit and return the
// job id immediately -- sweep/refine only), "priority" (higher runs
// first; default 0), "timeout_ms" (sweep/refine deadline in
// milliseconds from submission; 0 = none. A job whose deadline expires
// while queued, or that a running evaluation observes between batches,
// terminates in the "timed_out" state and synchronous requests get an
// error response with "code": "timed_out"), and "request_id" (a
// client-chosen idempotency key for sweep/refine, 1..128 visible ASCII
// characters. Submitting a request whose request_id matches a recent
// submission with the SAME payload returns the EXISTING job instead of
// enqueueing a duplicate -- the safe way to retry a submit after a
// connection reset that ate the response. The scheduler remembers the
// most recent submissions in a bounded window (the daemon's
// --dedup-window, default 4096 keys, oldest evicted first); reusing a
// remembered key with a DIFFERENT payload is rejected with
// "code": "request_id_conflict". Ignored by the inline kinds)):
//
//   {"id": 1, "kind": "sweep", "codes": ["TC", "BGC"], "radix": 2,
//    "lengths": [8, 10], "nanowires": [20], "sigmas_vt": [0.04, 0.05],
//    "trials": 150, "broken": 0.0, "bridge": 0.0,
//    "min_half_width": 0.01}
//     -> grid = codes x lengths x nanowires x sigmas_vt; axes with
//        platform defaults may be omitted. min_half_width > 0 asks for a
//        Wilson CI at most that wide per Monte-Carlo point: cached points
//        that miss it are topped up from their persisted (mean, trials,
//        M2) instead of recomputed (service::sweep_service semantics).
//
//   {"id": 2, "kind": "refine", "code": "BGC", "radix": 2, "length": 10,
//    "trials": 150, "sigma_low": 0.02, "sigma_high": 0.12,
//    "threshold": 0.5, "resolution": 0.001}
//     -> sigma-cliff bisection (service/refine.h).
//
//   {"id": 3, "kind": "status", "job": 7, "wait": true}
//     -> state of an async job; "wait": true blocks until the job is
//        terminal and, when it completed, carries the full result payload.
//
//   {"id": 4, "kind": "cancel", "job": 7}
//     -> cancels a queued job; running/finished jobs report their state.
//
//   {"id": 5, "kind": "stats", "detail": true}
//     -> store/engine counters; "detail" adds the cost-class sizes,
//        eviction split, top-up count, and the job-scheduler counters.
//
//   {"id": 6, "kind": "flush", "clear": false}
//     -> persists the store to the daemon's cache file (before clearing,
//        when "clear" is true).
//
//   {"id": 7, "kind": "metrics"}
//     -> point-in-time snapshot of the observability registry
//        (util/metrics): {"counters": {...}, "gauges": {...},
//        "histograms": {...}} with byte-stable key order. The same
//        snapshot renders in Prometheus text form on --metrics-port.
//
//   {"id": 8, "kind": "subscribe", "job": 7, "from": 0}
//     -> STREAMING: after an acknowledgement line, the connection
//        receives one line per job lifecycle event ({"job": 7, "seq": N,
//        "event": "queued" | "running" | "progress" | "done" | "failed"
//        | "cancelled" | "timed_out", ...}) until the terminal event,
//        whose body carries the same result payload a
//        {"kind": "status", "wait": true} would (byte-identical
//        "result"). "from" (default 0) replays history after that
//        sequence number first -- the resume cursor after a reconnect.
//        A subscriber that cannot keep up is evicted with a final
//        {"code": "event_overflow"} event; the daemon's drain pushes a
//        final {"code": "draining"} event. Served on the streaming
//        transports (stdin loop, socket, HTTP SSE); a transport that
//        answers exactly one line per request refuses it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "codes/code_space.h"
#include "core/sweep_engine.h"
#include "fab/defects.h"
#include "service/refine.h"
#include "util/json.h"

namespace nwdec::api {

/// Fields shared by every request kind.
struct request_header {
  json_value client_id;      ///< the request's "id", echoed verbatim (null
                             ///< when absent)
  bool async_submit = false; ///< "async": return the job id immediately
  int priority = 0;          ///< higher-priority jobs run first
  /// Deadline in milliseconds from submission for sweep/refine jobs
  /// (0 = none): expired jobs terminate "timed_out" instead of running
  /// to completion. Ignored by the inline kinds (status/cancel/...).
  std::size_t timeout_ms = 0;
  /// Idempotency key for sweep/refine submissions ('' = none): retrying
  /// a submit with the same key and payload returns the existing job
  /// instead of enqueueing a duplicate; the same key with a different
  /// payload is rejected with "code": "request_id_conflict" (see the
  /// header comment). Ignored by the inline kinds.
  std::string request_id;
};

/// One "sweep" request in wire form (the grid axes exactly as the client
/// spelled them; axes() expands them into the engine grid).
struct sweep_request {
  request_header header;
  std::vector<codes::code_type> codes;
  unsigned radix = 2;
  std::vector<std::size_t> lengths;
  std::vector<std::size_t> nanowires;  ///< empty = platform default
  std::vector<double> sigmas_vt;       ///< empty = platform default
  std::size_t trials = 0;
  fab::defect_params defects{0.0, 0.0};
  /// 0 = fixed trial budget; > 0 = per-point CI target (see header).
  double min_half_width = 0.0;

  /// The engine grid; throws when codes/lengths are empty.
  core::sweep_axes axes() const;
};

/// One "refine" request (wire form of service::refine_request).
struct refine_request {
  request_header header;
  service::refine_request refinement;
};

struct status_request {
  request_header header;
  std::uint64_t job = 0;
  bool wait = false;  ///< block until the job is terminal
};

struct cancel_request {
  request_header header;
  std::uint64_t job = 0;
};

struct stats_request {
  request_header header;
  bool detail = false;  ///< add class sizes, eviction split, job counters
};

struct flush_request {
  request_header header;
  bool clear = false;
};

struct metrics_request {
  request_header header;
};

/// Attach to a job's lifecycle event stream (streaming transports only;
/// see the grammar comment). The dispatcher answers it by pumping
/// event_bus lines at the subscriber until the stream ends.
struct subscribe_request {
  request_header header;
  std::uint64_t job = 0;
  /// Replay cursor: deliver history with seq > from first (0 = from the
  /// beginning). Clients resume interrupted streams from their last
  /// seen sequence number.
  std::uint64_t from_seq = 0;
};

using request =
    std::variant<sweep_request, refine_request, status_request,
                 cancel_request, stats_request, flush_request,
                 metrics_request, subscribe_request>;

/// The request's wire kind ("sweep", "refine", ...).
const char* kind_name(const request& parsed);

/// The shared header of any request variant.
const request_header& header_of(const request& parsed);

/// Parses one request object; throws (invalid_argument_error /
/// json_parse_error and friends) on malformed input with a diagnostic the
/// dispatcher turns into an "ok": false response.
request parse_request(const json_value& root);

/// json_parse + parse_request for one NDJSON line.
request parse_request_line(const std::string& line);

/// Serializes a request in canonical wire form (default-valued optional
/// members omitted): the inverse of parse_request, and the form clients
/// are documented against.
void write_request(json_writer& json, const request& parsed);
std::string to_json(const request& parsed,
                    json_writer::style style = json_writer::style::compact);

}  // namespace nwdec::api
