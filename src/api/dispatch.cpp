#include "api/dispatch.h"

#include <exception>

#include "api/events.h"
#include "service/refine.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/metrics.h"

namespace nwdec::api {

namespace {

// Opens the legacy response envelope: {"id": <echo>, "kind": K, "ok": true.
json_writer begin_response(const json_value& id, const char* kind) {
  json_writer json(json_writer::style::compact);
  json.begin_object();
  json.key("id").value(id);
  json.field("kind", kind).field("ok", true);
  return json;
}

}  // namespace

std::string error_response_json(const json_value& id,
                                const std::string& what,
                                const std::string& code) {
  json_writer json(json_writer::style::compact);
  json.begin_object();
  json.key("id").value(id);
  json.field("ok", false).field("error", what);
  if (!code.empty()) json.field("code", code);
  json.end_object();
  return json.str();
}

dispatcher::dispatcher(service::sweep_service& service)
    : dispatcher(service, options()) {}

dispatcher::dispatcher(service::sweep_service& service, options opts)
    : service_(service),
      cache_path_(std::move(opts.cache_path)),
      scheduler_(service, {opts.workers, opts.retain_finished,
                           opts.max_queued, opts.slow_request_ms,
                           opts.dedup_window}) {}

std::string dispatcher::handle_line(const std::string& line) {
  json_value id;  // null until the request parses far enough to carry one
  try {
    NWDEC_FAILPOINT("api.dispatch.handle_line");
    const json_value root = json_parse(line);
    NWDEC_EXPECTS(root.is_object(), "a request must be a JSON object");
    if (const json_value* found = root.find("id")) id = *found;
    const request parsed = parse_request(root);
    metrics::registry::global()
        .get_counter("nwdec_requests_total",
                     std::string("kind=\"") + kind_name(parsed) + "\"")
        .inc();
    return std::visit([this](const auto& r) { return handle(r); }, parsed);
  } catch (const overloaded_error& failure) {
    metrics::registry::global().get_counter("nwdec_request_errors_total").inc();
    return error_response_json(id, failure.what(), "overloaded");
  } catch (const conflict_error& failure) {
    metrics::registry::global().get_counter("nwdec_request_errors_total").inc();
    return error_response_json(id, failure.what(), "request_id_conflict");
  } catch (const std::exception& failure) {
    metrics::registry::global().get_counter("nwdec_request_errors_total").inc();
    return error_response_json(id, failure.what());
  }
}

// Renders a terminal job in the legacy synchronous wire shape -- the
// committed daemon golden pins these bytes for sweep and refine. The
// "topped_up" member is new with the CI-target feature and appears only
// when the request asked for one (or a fixed-budget point actually
// resumed), so legacy requests keep their exact PR 3 responses.
std::string dispatcher::sync_response(const json_value& id,
                                      const job_result& job) {
  if (job.status.state == job_state::failed) {
    return error_response_json(id, job.status.error);
  }
  if (job.status.state == job_state::cancelled) {
    return error_response_json(id, "the job was cancelled");
  }
  if (job.status.state == job_state::timed_out) {
    return error_response_json(id, "the job's timeout_ms deadline expired",
                               "timed_out");
  }
  if (job.status.state != job_state::done) {
    // Only a scheduler shutdown releases a synchronous wait before the
    // job is terminal; answer honestly instead of rendering an empty
    // payload as success. The job never ran, so "draining" tells a
    // resilient client the request is safe to retry against the
    // restarted daemon.
    return error_response_json(
        id, "the service is shutting down before the job could run",
        "draining");
  }
  json_writer json = begin_response(
      id, job.status.kind == "sweep" ? "sweep" : "refine");
  write_result_fields(json, result_payload{job.status.kind, job.sweep,
                                           job.refined,
                                           job.report_topped_up});
  return json.end_object().str();
}

// Shared submit path of the two job kinds: async submissions answer the
// job id immediately, synchronous ones wait for the terminal snapshot. A
// request_id retry deduplicated onto an existing job reports that job's
// CURRENT state (it may already be running or done) plus
// "deduplicated": true; first-time submissions keep their exact legacy
// bytes, so the committed golden is unchanged.
std::string dispatcher::submit_job(const request& parsed, const char* kind) {
  const json_value& id = header_of(parsed).client_id;
  // Store-aware admission applies to synchronous sweeps only: async
  // submissions and refines need a job id, so they always enqueue.
  const bool allow_inline = !header_of(parsed).async_submit &&
                            std::holds_alternative<sweep_request>(parsed);
  const submit_outcome outcome =
      scheduler_.submit_or_serve(parsed, allow_inline);
  if (outcome.inline_sweep != nullptr) {
    // Answered inline from the store: render exactly the synchronous
    // done-job shape, so a warm response is byte-identical whether a
    // worker produced it or admission short-circuited it.
    job_result served;
    served.status.state = job_state::done;
    served.status.kind = "sweep";
    served.sweep = outcome.inline_sweep;
    served.report_topped_up =
        std::get<sweep_request>(parsed).min_half_width > 0.0;
    return sync_response(id, served);
  }
  const std::uint64_t job = outcome.job;
  if (header_of(parsed).async_submit) {
    json_writer json = begin_response(id, kind);
    json.field("async", true).field("job", job);
    if (outcome.deduplicated) {
      const std::optional<job_result> existing = scheduler_.inspect(job);
      json.field("state", existing.has_value()
                              ? job_state_name(existing->status.state)
                              : "forgotten")
          .field("deduplicated", true);
    } else {
      json.field("state", "queued");
    }
    return json.end_object().str();
  }
  const std::optional<job_result> done = scheduler_.wait(job);
  if (!done.has_value()) {
    return error_response_json(id, "the job result expired unfetched");
  }
  return sync_response(id, *done);
}

std::string dispatcher::handle(const sweep_request& request) {
  return submit_job(request, "sweep");
}

std::string dispatcher::handle(const refine_request& request) {
  return submit_job(request, "refine");
}

std::string dispatcher::handle(const status_request& request) {
  const json_value& id = request.header.client_id;
  const std::optional<job_result> job =
      request.wait ? scheduler_.wait(request.job)
                   : scheduler_.inspect(request.job);
  if (!job.has_value()) {
    return error_response_json(
        id, "unknown job id " + std::to_string(request.job) +
                " (never submitted, or already forgotten)");
  }
  json_writer json = begin_response(id, "status");
  json.field("job", job->status.id)
      .field("state", job_state_name(job->status.state))
      .field("request_kind", job->status.kind)
      .field("priority", job->status.priority)
      .field("progress_done", job->status.progress_done)
      .field("progress_total", job->status.progress_total);
  // Out-of-band span record of a job that reached a worker: request
  // tracing is additive observability around the payload, never part of
  // it (the result bytes below are identical with or without it).
  if (job->trace.ran) {
    const job_trace& trace = job->trace;
    json.key("trace")
        .begin_object()
        .field("trace_id", format_trace_id(trace.trace_id))
        .field("queue_wait_ms", trace.queue_wait_seconds * 1000.0)
        .field("batch_jobs", trace.batch_jobs)
        .field("batch_points", trace.batch_points)
        .field("store_lookup_ms", trace.spans.store_lookup_seconds * 1000.0)
        .field("engine_ms", trace.spans.engine_seconds * 1000.0)
        .field("engine_points", trace.spans.engine_points)
        .field("mc_trials", trace.spans.mc_trials)
        .field("store_insert_ms", trace.spans.store_insert_seconds * 1000.0)
        .field("wal_append_ms", trace.spans.wal_append_seconds * 1000.0)
        .field("wal_rotation_ms", trace.spans.wal_rotation_seconds * 1000.0);
    if (job_state_terminal(job->status.state)) {
      json.field("total_ms", trace.total_seconds * 1000.0);
    }
    json.end_object();
  }
  if (job->status.state == job_state::failed ||
      job->status.state == job_state::timed_out) {
    json.field("error", job->status.error);
  } else if (job->status.state == job_state::done) {
    write_result_fields(json, result_payload{job->status.kind, job->sweep,
                                             job->refined,
                                             job->report_topped_up});
  }
  return json.end_object().str();
}

std::string dispatcher::handle(const cancel_request& request) {
  const json_value& id = request.header.client_id;
  switch (scheduler_.cancel(request.job)) {
    case cancel_outcome::cancelled: {
      json_writer json = begin_response(id, "cancel");
      json.field("job", request.job).field("state", "cancelled");
      return json.end_object().str();
    }
    case cancel_outcome::cancelling: {
      // The running evaluation stops at its next cooperative check; a
      // status request (or the job's synchronous waiter) sees the final
      // cancelled/done/failed state.
      json_writer json = begin_response(id, "cancel");
      json.field("job", request.job).field("state", "cancelling");
      return json.end_object().str();
    }
    case cancel_outcome::unknown:
      return error_response_json(
          id, "unknown job id " + std::to_string(request.job) +
                  " (never submitted, or already forgotten)");
    case cancel_outcome::finished: break;
  }
  const std::optional<job_result> job = scheduler_.inspect(request.job);
  return error_response_json(
      id, "job " + std::to_string(request.job) + " is " +
              (job.has_value() ? job_state_name(job->status.state)
                               : "forgotten") +
              " and can no longer be cancelled");
}

std::string dispatcher::handle(const stats_request& request) {
  const service::service_stats stats = service_.stats();
  const service::service_options& options = service_.options();

  json_writer json = begin_response(request.header.client_id, "stats");
  json.key("result")
      .begin_object()
      .field("mode", service::mc_mode_name(options.mode))
      .field("seed", std::to_string(options.seed))
      .field("adaptive", options.adaptive.has_value())
      .key("store")
      .begin_object()
      .field("entries", stats.entries)
      .field("capacity", stats.capacity)
      .field("hits", stats.store.hits)
      .field("misses", stats.store.misses)
      .field("insertions", stats.store.insertions)
      .field("evictions", stats.store.evictions);
  if (request.detail) {
    // The cost-class split and top-up counter are additive detail: the
    // legacy stats shape (and the committed golden) stays byte-identical
    // without the flag.
    json.field("cheap_entries", stats.cheap_entries)
        .field("mc_entries", stats.mc_entries)
        .field("cheap_evictions", stats.store.cheap_evictions)
        .field("mc_evictions", stats.store.mc_evictions)
        .field("topped_up", stats.topped_up);
  }
  json.end_object()
      .key("engine")
      .begin_object()
      .field("designs_built", stats.engine.designs_built)
      .field("design_reuses", stats.engine.design_reuses)
      .field("plans_built", stats.engine.plans_built)
      .field("plan_reuses", stats.engine.plan_reuses)
      .end_object();
  if (request.detail) {
    const scheduler_stats jobs = scheduler_.stats();
    json.key("jobs")
        .begin_object()
        .field("submitted", jobs.submitted)
        .field("completed", jobs.completed)
        .field("failed", jobs.failed)
        .field("cancelled", jobs.cancelled)
        .field("timed_out", jobs.timed_out)
        .field("shed", jobs.shed)
        .field("queued", jobs.queued)
        .field("running", jobs.running)
        .field("sweep_batches", jobs.sweep_batches)
        .field("sweep_jobs_batched", jobs.sweep_jobs_batched)
        // Appended strictly after the PR 5 keys (the detail-consumer
        // byte-prefix discipline): request_id retries answered with an
        // existing job instead of a duplicate, then sweeps answered
        // inline by store-aware admission (strictly after again).
        .field("deduplicated", jobs.deduplicated)
        .field("answered_inline", jobs.answered_inline)
        .end_object();
    // Observability detail (appended strictly AFTER the PR 5 detail keys,
    // so existing detail consumers keep their byte prefixes): process
    // uptime, the live queue depth, and a summary of the job-latency
    // histogram the metrics registry accumulates.
    metrics::registry& registry = metrics::registry::global();
    json.field("uptime_ms", registry.uptime_seconds() * 1000.0)
        .field("queue_depth", jobs.queued);
    metrics::histogram& latency =
        registry.get_histogram("nwdec_job_duration_seconds");
    metrics::histogram_sample sample;
    sample.bounds = latency.bounds();
    sample.buckets = latency.bucket_counts();
    sample.count = latency.count();
    sample.sum = latency.sum();
    json.key("job_latency")
        .begin_object()
        .field("count", sample.count)
        .field("mean_ms", sample.count == 0
                              ? 0.0
                              : sample.sum * 1000.0 /
                                    static_cast<double>(sample.count))
        .field("p50_ms", metrics::histogram_quantile(sample, 0.5) * 1000.0)
        .field("p90_ms", metrics::histogram_quantile(sample, 0.9) * 1000.0)
        .field("p99_ms", metrics::histogram_quantile(sample, 0.99) * 1000.0)
        .end_object();
  }
  json.end_object();
  return json.end_object().str();
}

std::string dispatcher::handle(const metrics_request& request) {
  // The uptime gauge is set here (not continuously) so snapshots are
  // consistent: every value in one response was read at the same moment.
  metrics::registry& registry = metrics::registry::global();
  registry.get_gauge("nwdec_uptime_seconds").set(registry.uptime_seconds());
  json_writer json = begin_response(request.header.client_id, "metrics");
  json.key("result");
  metrics::write_json(json, registry.snapshot());
  return json.end_object().str();
}

std::string dispatcher::handle(const subscribe_request& request) {
  // Reachable only through handle_line(): a transport that cannot
  // interleave pushed lines (the one-in/one-out contract) has no place
  // to deliver a stream, so answering the ack and silently dropping the
  // events would be worse than refusing.
  return error_response_json(
      request.header.client_id,
      "subscribe requires a streaming transport (socket or HTTP SSE); "
      "this transport answers exactly one line per request");
}

void dispatcher::handle_stream(const std::string& line, line_sink& sink) {
  // Only "subscribe" diverges from the one-in/one-out path. Sniff the
  // kind; on ANY failure fall through to handle_line(), which renders
  // the same diagnostics it always has -- so malformed subscribes and
  // every other kind behave exactly as before.
  try {
    const json_value root = json_parse(line);
    if (root.is_object()) {
      const json_value* kind = root.find("kind");
      if (kind != nullptr && kind->as_string() == "subscribe") {
        const request parsed = parse_request(root);
        metrics::registry::global()
            .get_counter("nwdec_requests_total", "kind=\"subscribe\"")
            .inc();
        serve_subscription(std::get<subscribe_request>(parsed), sink);
        return;
      }
    }
  } catch (const std::exception&) {
    // handle_line() below re-raises and renders the diagnostic.
  }
  sink.write(handle_line(line));
}

void dispatcher::serve_subscription(const subscribe_request& request,
                                    line_sink& sink) {
  const json_value& id = request.header.client_id;
  const std::shared_ptr<event_subscription> events =
      scheduler_.subscribe(request.job, request.from_seq);
  if (events == nullptr) {
    sink.write(error_response_json(
        id, "unknown job id " + std::to_string(request.job) +
                " (never submitted, or already forgotten)"));
    return;
  }
  json_writer ack = begin_response(id, "subscribe");
  ack.field("job", request.job);
  if (request.from_seq != 0) ack.field("from", request.from_seq);
  if (!sink.write(ack.end_object().str())) return;
  for (;;) {
    const std::optional<job_event> event = events->next(200);
    if (event.has_value()) {
      if (!sink.write(event->line)) return;  // peer gone: stop pumping
      continue;
    }
    if (events->closed()) return;  // terminal / evicted / drained
  }
}

std::string dispatcher::handle(const flush_request& request) {
  const service::flush_summary summary =
      service_.flush(cache_path_, request.clear);
  json_writer json = begin_response(request.header.client_id, "flush");
  json.field("persisted", summary.persisted)
      .field("entries", summary.entries)
      .field("cleared", request.clear);
  return json.end_object().str();
}

}  // namespace nwdec::api
