// api::transport: how request lines reach the dispatcher -- decoupled from
// what the requests mean.
//
// A transport owns one ingress (stdin, a listening socket, ...) and pumps
// NDJSON lines through a line_handler (api/dispatch.h), writing each
// returned response line back to the requester. Dispatch is transport-
// agnostic by contract: the same request line produces the same response
// bytes over every transport (the CI socket smoke diffs the two).
//
//   * stdio_transport -- the legacy daemon loop: one request per stdin
//     line, one response per stdout line, byte-compatible with PR 3.
//   * tcp_transport (api/tcp_transport.h) -- a socket server handling any
//     number of concurrent connections, one thread per connection.
#pragma once

#include <iosfwd>

#include "api/dispatch.h"

namespace nwdec::api {

class transport {
 public:
  virtual ~transport() = default;
  /// Serves requests until the ingress is exhausted (stdio: EOF) or
  /// shutdown is requested (tcp). Returns a process exit code.
  virtual int serve(line_handler& handler) = 0;
};

/// The stdin/stdout NDJSON loop. Empty lines are skipped; every response
/// is flushed immediately so the daemon composes with pipes.
class stdio_transport final : public transport {
 public:
  stdio_transport(std::istream& in, std::ostream& out);
  int serve(line_handler& handler) override;

 private:
  std::istream& in_;
  std::ostream& out_;
};

}  // namespace nwdec::api
