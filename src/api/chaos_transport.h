// api::chaos_transport: a deterministic network-fault-injection proxy.
//
// An in-process TCP proxy that sits between a client and an
// nwdec_service listener and misbehaves on purpose: injected latency,
// connection resets (real RSTs, via SO_LINGER 0), truncated forwards
// (a prefix of a chunk arrives, then the reset), and partial writes
// (chunks split into small pieces, exercising the peer's reassembly
// loops). The chaos tests run clients through it to prove the
// idempotent-retry ladder converges: every job completes byte-identical
// with zero duplicate engine runs, no matter where the proxy cuts.
//
// Determinism: all fault decisions come from a splitmix64 stream seeded
// with (options.seed, connection index), so a failing test case replays
// exactly from its seed. For placing a fault at one precise moment the
// proxy also crosses util/failpoint markers -- arm them with the
// standard grammar (skip counts included):
//
//   * "chaos.connect.upstream" -- fire `error` to refuse the upstream
//     connect (the client sees an immediate close, as if the daemon
//     were down);
//   * "chaos.forward.request"  -- fire `error` to reset the connection
//     instead of forwarding a client->server chunk;
//   * "chaos.forward.response" -- the same for a server->client chunk
//     (the reset that eats a response after the work was done -- the
//     case request_id dedup exists for).
//
// set_upstream_port() repoints the proxy (thread-safe; applies to new
// connections), which is how the kill-restart soak swaps in a restarted
// daemon without the clients ever changing address.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace nwdec::api {

struct chaos_options {
  /// Proxy listen port (0 = ephemeral; read it back with port()).
  std::uint16_t listen_port = 0;
  std::string upstream_host = "127.0.0.1";
  std::uint16_t upstream_port = 0;
  /// Seeds every fault decision; same seed, same chaos.
  std::uint64_t seed = 2009;
  /// Per-chunk probability of resetting the connection (RST both ways).
  double reset_probability = 0.0;
  /// Per-chunk probability of forwarding only a prefix, then resetting.
  double truncate_probability = 0.0;
  /// Injected delay per chunk: uniform [0, max_latency_ms] (0 = none).
  int max_latency_ms = 0;
  /// Forward in pieces of at most this many bytes (0 = whole chunks);
  /// exercises short-read/short-write handling on both sides.
  std::size_t max_write_bytes = 0;
};

/// Counters of what the proxy actually did (monotonic since start()).
struct chaos_stats {
  std::uint64_t connections = 0;
  std::uint64_t resets = 0;       ///< injected resets (truncations included)
  std::uint64_t truncations = 0;  ///< resets that forwarded a prefix first
  std::uint64_t delayed_chunks = 0;
};

class chaos_transport {
 public:
  /// Binds and listens immediately; start() begins accepting. Throws
  /// nwdec::error on socket failure.
  explicit chaos_transport(chaos_options options);
  ~chaos_transport();
  chaos_transport(const chaos_transport&) = delete;
  chaos_transport& operator=(const chaos_transport&) = delete;

  std::uint16_t port() const { return port_; }

  void start();
  /// Stops accepting, resets every live proxied connection, and joins
  /// the proxy threads. Idempotent.
  void stop();

  /// Repoints new connections (live ones keep their upstream). The
  /// kill-restart soak calls this after reviving the daemon on a fresh
  /// ephemeral port.
  void set_upstream_port(std::uint16_t port) {
    upstream_port_.store(port, std::memory_order_relaxed);
  }

  chaos_stats stats() const;

 private:
  void accept_loop();
  void pump(int client, std::uint64_t connection_seed);
  /// RST both directions: SO_LINGER 0 + close, so the peers observe a
  /// genuine connection reset, not an orderly shutdown.
  void reset_pair(int client, int upstream);
  void deregister(int client, int upstream);

  chaos_options options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::atomic<std::uint16_t> upstream_port_{0};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> resets_{0};
  std::atomic<std::uint64_t> truncations_{0};
  std::atomic<std::uint64_t> delayed_chunks_{0};

  std::mutex mutex_;  ///< guards fds_ and active_ (thread registry)
  std::condition_variable idle_cv_;
  std::vector<int> fds_;  ///< every live proxied fd, for stop()
  std::size_t active_ = 0;
  std::thread accept_thread_;
};

}  // namespace nwdec::api
