#include "api/job_scheduler.h"

#include <algorithm>
#include <cstdio>
#include <exception>

#include "api/events.h"
#include "service/refine.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace nwdec::api {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// Job lifecycle metrics; resolved once, relaxed-atomic updates after.
// All increments happen under the scheduler mutex, so counter totals
// agree exactly with scheduler_stats.
struct scheduler_metrics {
  metrics::counter& submitted_sweep;
  metrics::counter& submitted_refine;
  metrics::counter& completed;
  metrics::counter& failed;
  metrics::counter& cancelled;
  metrics::counter& timed_out;
  metrics::counter& shed;
  metrics::counter& deduplicated;
  metrics::counter& answered_inline;
  metrics::counter& sweep_batches;
  metrics::counter& sweep_jobs_batched;
  metrics::gauge& queued;
  metrics::gauge& running;
  metrics::histogram& queue_wait_seconds;
  metrics::histogram& duration_seconds;

  static scheduler_metrics& get() {
    static scheduler_metrics instance = [] {
      metrics::registry& reg = metrics::registry::global();
      return scheduler_metrics{
          reg.get_counter("nwdec_jobs_submitted_total", "kind=\"sweep\""),
          reg.get_counter("nwdec_jobs_submitted_total", "kind=\"refine\""),
          reg.get_counter("nwdec_jobs_completed_total"),
          reg.get_counter("nwdec_jobs_failed_total"),
          reg.get_counter("nwdec_jobs_cancelled_total"),
          reg.get_counter("nwdec_jobs_timed_out_total"),
          reg.get_counter("nwdec_jobs_shed_total"),
          reg.get_counter("nwdec_jobs_deduplicated_total"),
          reg.get_counter("nwdec_jobs_answered_inline_total"),
          reg.get_counter("nwdec_sweep_batches_total"),
          reg.get_counter("nwdec_sweep_jobs_batched_total"),
          reg.get_gauge("nwdec_jobs_queued"),
          reg.get_gauge("nwdec_jobs_running"),
          reg.get_histogram("nwdec_job_queue_wait_seconds"),
          reg.get_histogram("nwdec_job_duration_seconds")};
    }();
    return instance;
  }
};

}  // namespace

std::string format_trace_id(std::uint64_t trace_id) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buffer;
}

const char* job_state_name(job_state state) {
  switch (state) {
    case job_state::queued: return "queued";
    case job_state::running: return "running";
    case job_state::cancelling: return "cancelling";
    case job_state::done: return "done";
    case job_state::failed: return "failed";
    case job_state::cancelled: return "cancelled";
    case job_state::timed_out: return "timed_out";
  }
  return "unknown";
}

struct job_scheduler::job_record {
  std::uint64_t id = 0;
  int priority = 0;
  job_state state = job_state::queued;
  std::string kind;
  json_value client_id;
  /// Cooperative cancel flag: polled (lock-free) by the running
  /// evaluation's between-batch checks; set by cancel().
  std::atomic<bool> cancel_requested{false};
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline;  ///< valid iff has_deadline
  // Request forms (one is populated, by kind).
  std::vector<service::point_query> queries;  ///< sweep grid, in order
  bool report_topped_up = false;
  service::refine_request refinement;
  // Results: set exactly once at completion and immutable after, so
  // snapshots share them instead of copying every grid point.
  std::shared_ptr<const service::sweep_response> sweep;
  std::shared_ptr<const service::refine_result> refined;
  std::string error;
  std::size_t progress_done = 0;
  std::size_t progress_total = 0;
  int waiters = 0;  ///< active wait() calls; pins the record in retention
  // Tracing (out-of-band; see job_trace).
  std::chrono::steady_clock::time_point submit_time;
  job_trace trace;
};

job_scheduler::job_scheduler(service::sweep_service& service)
    : job_scheduler(service, options()) {}

job_scheduler::job_scheduler(service::sweep_service& service, options opts)
    : service_(service), options_(opts) {
  NWDEC_EXPECTS(options_.retain_finished >= 1,
                "the scheduler must retain at least one finished job");
  // Trace ids are (wall-clock anchor x job id) hashes: unique across
  // scheduler instances and restarts, and strictly out-of-band (nothing
  // deterministic ever depends on one).
  trace_seed_ = rng::counter_seed(
      0x7ace1dULL,
      static_cast<std::uint64_t>(
          std::chrono::system_clock::now().time_since_epoch().count()));
  std::size_t workers = options_.workers;
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

job_scheduler::~job_scheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  // Release subscription pumps before joining: a connection thread
  // blocked in event_subscription::next() would otherwise only notice
  // the shutdown at its next poll timeout.
  events_.close_all();
  work_cv_.notify_all();
  done_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::uint64_t job_scheduler::submit(request parsed, bool* deduplicated) {
  const submit_outcome outcome = submit_or_serve(std::move(parsed), false);
  if (deduplicated != nullptr) *deduplicated = outcome.deduplicated;
  return outcome.job;
}

submit_outcome job_scheduler::submit_or_serve(request parsed,
                                              bool allow_inline) {
  submit_outcome outcome;
  // The idempotency payload: the request's canonical wire form with the
  // envelope members that do not change the work (the echoed "id", the
  // async flag) normalized away -- so a retry over a fresh connection
  // with a new envelope id still matches its original submission, while
  // any change to the actual work (grid, trials, priority, deadline) is
  // a different payload and conflicts.
  std::string dedup_key;
  std::string dedup_payload;
  if (options_.dedup_window > 0 &&
      (std::holds_alternative<sweep_request>(parsed) ||
       std::holds_alternative<refine_request>(parsed)) &&
      !header_of(parsed).request_id.empty()) {
    request normalized = parsed;
    std::visit(
        [](auto& r) {
          r.header.client_id = json_value();
          r.header.async_submit = false;
        },
        normalized);
    dedup_key = header_of(parsed).request_id;
    dedup_payload = to_json(normalized);
  }

  auto record = std::make_shared<job_record>();
  std::size_t timeout_ms = 0;
  if (const sweep_request* sweep = std::get_if<sweep_request>(&parsed)) {
    record->kind = "sweep";
    record->client_id = sweep->header.client_id;
    record->priority = sweep->header.priority;
    timeout_ms = sweep->header.timeout_ms;
    record->report_topped_up = sweep->min_half_width > 0.0;
    for (const core::sweep_request& point : sweep->axes().expand()) {
      record->queries.push_back({point, sweep->min_half_width});
    }
    record->progress_total = record->queries.size();
  } else if (const refine_request* refine =
                 std::get_if<refine_request>(&parsed)) {
    record->kind = "refine";
    record->client_id = refine->header.client_id;
    record->priority = refine->header.priority;
    timeout_ms = refine->header.timeout_ms;
    record->refinement = refine->refinement;
  } else {
    throw invalid_argument_error(
        "only sweep and refine requests become jobs (" +
        std::string(kind_name(parsed)) + " is served inline)");
  }

  // Both locked sections below consult the dedup window; the verdicts
  // must match exactly, so the logic lives here once. Returns the entry
  // (nullptr when the key is absent or unused); throws on a payload
  // conflict. Caller holds mutex_.
  const auto dedup_lookup_locked = [&]() -> dedup_entry* {
    if (dedup_key.empty()) return nullptr;
    const auto found = dedup_.find(dedup_key);
    if (found == dedup_.end()) return nullptr;
    if (found->second.payload != dedup_payload) {
      throw conflict_error(
          "request_id '" + dedup_key +
          "' was already used by a different request; retries must "
          "resend the original payload (or pick a fresh request_id)");
    }
    return &found->second;
  };

  // Phase 1 (locked): idempotent retry detection comes FIRST -- before
  // the queue bound and before the store probe -- because answering a
  // retry with its existing job creates no new work: shedding it would
  // punish exactly the client the dedup window exists to protect. An
  // entry with job == 0 marks a request answered inline earlier; the
  // retry falls through to be answered inline again (or enqueued, for
  // an async retry that needs a job id).
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    NWDEC_EXPECTS(!stopping_, "the job scheduler is shutting down");
    if (const dedup_entry* entry = dedup_lookup_locked();
        entry != nullptr && entry->job != 0) {
      ++stats_.deduplicated;
      scheduler_metrics::get().deduplicated.inc();
      outcome.job = entry->job;
      outcome.deduplicated = true;
      return outcome;
    }
  }

  // Phase 2 (unlocked): store-aware admission. A synchronous sweep whose
  // every point the store already answers never needs a worker or a job
  // id -- the probe either serves the whole response (hit counters and
  // LRU recency moving exactly as the batched path would) or declines
  // with no side effects. Probing outside mutex_ keeps slow store passes
  // off the submit path of other clients.
  if (allow_inline && record->kind == "sweep" && !record->queries.empty()) {
    std::optional<service::sweep_response> served =
        service_.try_serve_cached(record->queries);
    if (served.has_value()) {
      const std::lock_guard<std::mutex> lock(mutex_);
      NWDEC_EXPECTS(!stopping_, "the job scheduler is shutting down");
      // Remember the inline answer under its request_id with job 0, so a
      // retry is recognized (deduplicated) instead of conflicting -- and
      // re-served inline, which is idempotent: the payload is a pure
      // function of (config, request). A concurrent identical submit may
      // have raced a REAL job in while we probed; answer the retry with
      // that job's id instead, like any other dedup hit.
      if (const dedup_entry* entry = dedup_lookup_locked();
          entry != nullptr) {
        outcome.deduplicated = true;
        if (entry->job != 0) {
          ++stats_.deduplicated;
          scheduler_metrics::get().deduplicated.inc();
          outcome.job = entry->job;
          return outcome;
        }
        ++stats_.deduplicated;
        scheduler_metrics::get().deduplicated.inc();
      } else if (!dedup_key.empty()) {
        dedup_.emplace(dedup_key, dedup_entry{0, dedup_payload});
        dedup_order_.push_back(dedup_key);
        while (dedup_order_.size() > options_.dedup_window) {
          dedup_.erase(dedup_order_.front());
          dedup_order_.pop_front();
        }
      }
      ++stats_.answered_inline;
      scheduler_metrics::get().answered_inline.inc();
      outcome.inline_sweep = std::make_shared<const service::sweep_response>(
          std::move(*served));
      return outcome;
    }
  }

  // Phase 3 (locked): enqueue. The dedup window is re-checked because
  // phase 2 ran unlocked: a concurrent identical submit may have created
  // the job already (answer with it), and a key remembered as an inline
  // answer (job 0) is upgraded in place to point at the new job so later
  // retries keep converging on one submission.
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    NWDEC_EXPECTS(!stopping_, "the job scheduler is shutting down");
    dedup_entry* existing = dedup_lookup_locked();
    if (existing != nullptr && existing->job != 0) {
      ++stats_.deduplicated;
      scheduler_metrics::get().deduplicated.inc();
      outcome.job = existing->job;
      outcome.deduplicated = true;
      return outcome;
    }
    // Load shedding: a bounded queue turns overload into an explicit,
    // retryable error instead of unbounded memory growth and ever-worse
    // latency. Shed before allocating an id so rejected submissions
    // leave no trace beyond the counter.
    if (options_.max_queued > 0 && queue_.size() >= options_.max_queued) {
      ++stats_.shed;
      scheduler_metrics::get().shed.inc();
      throw overloaded_error("job queue is full (" +
                             std::to_string(options_.max_queued) +
                             " jobs waiting); retry later");
    }
    record->submit_time = std::chrono::steady_clock::now();
    if (timeout_ms > 0) {
      record->has_deadline = true;
      record->deadline =
          record->submit_time + std::chrono::milliseconds(timeout_ms);
    }
    id = next_id_++;
    record->id = id;
    record->trace.trace_id = rng::counter_seed(trace_seed_, id);
    if (existing != nullptr) {
      existing->job = id;
    } else if (!dedup_key.empty()) {
      // Remember the submission (bounded FIFO): once the window rolls a
      // key out, a very late retry becomes a fresh job -- which is safe,
      // just not free, because the result store still answers its points
      // from cache.
      dedup_.emplace(dedup_key,
                     dedup_entry{id, std::move(dedup_payload)});
      dedup_order_.push_back(std::move(dedup_key));
      while (dedup_order_.size() > options_.dedup_window) {
        dedup_.erase(dedup_order_.front());
        dedup_order_.pop_front();
      }
    }
    jobs_.emplace(id, record);
    queue_.emplace(-record->priority, id);
    ++stats_.submitted;
    (record->kind == "sweep" ? scheduler_metrics::get().submitted_sweep
                             : scheduler_metrics::get().submitted_refine)
        .inc();
    publish_event_locked(*record, "queued", false,
                         json_fragment([&](json_writer& json) {
                           json.field("kind", record->kind);
                           json.field("priority", record->priority);
                         }));
    sync_gauges_locked();
  }
  work_cv_.notify_one();
  outcome.job = id;
  return outcome;
}

std::shared_ptr<event_subscription> job_scheduler::subscribe(
    std::uint64_t job, std::uint64_t from_seq) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (jobs_.find(job) == jobs_.end()) return nullptr;
  return events_.subscribe(job, from_seq);
}

void job_scheduler::close_event_streams() { events_.close_all(); }

// Caller holds mutex_ (the documented scheduler -> bus lock order; the
// bus never calls back into the scheduler).
void job_scheduler::publish_event_locked(const job_record& job,
                                         const char* type, bool terminal,
                                         std::string body) {
  events_.publish(job.id, type, terminal, std::move(body));
}

job_result job_scheduler::snapshot(const job_record& job) const {
  job_result result;
  result.status.id = job.id;
  result.status.state = job.state;
  result.status.kind = job.kind;
  result.status.priority = job.priority;
  result.status.progress_done = job.progress_done;
  result.status.progress_total = job.progress_total;
  result.status.error = job.error;
  result.client_id = job.client_id;
  result.report_topped_up = job.report_topped_up;
  result.trace = job.trace;
  if (job.state == job_state::done) {
    result.sweep = job.sweep;
    result.refined = job.refined;
  }
  return result;
}

std::optional<job_result> job_scheduler::inspect(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = jobs_.find(id);
  if (found == jobs_.end()) return std::nullopt;
  return snapshot(*found->second);
}

std::optional<job_result> job_scheduler::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto found = jobs_.find(id);
  if (found == jobs_.end()) return std::nullopt;
  const std::shared_ptr<job_record> job = found->second;
  ++job->waiters;  // pins the record against retention trimming
  // stopping_ releases the wait too: a scheduler being destroyed will
  // never run the job, and a waiter blocked past the destructor would be
  // waiting on a destroyed condition variable. The caller then sees the
  // job in its non-terminal state and must treat it as unserved.
  const auto terminal = [&] {
    return stopping_ || job_state_terminal(job->state);
  };
  if (job->has_deadline) {
    if (!done_cv_.wait_until(lock, job->deadline, terminal) &&
        job->state == job_state::queued) {
      // Deadline passed with the job still waiting: time it out here --
      // with every worker busy no one else would until a worker finally
      // popped it. A running job instead times itself out at its next
      // cooperative check, so just keep waiting for that.
      queue_.erase({-job->priority, job->id});
      finish(*job, job_state::timed_out);
      done_cv_.notify_all();
    }
  }
  done_cv_.wait(lock, terminal);
  job_result result = snapshot(*job);
  --job->waiters;
  trim_locked();  // catch up on trims this pin deferred
  return result;
}

cancel_outcome job_scheduler::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto found = jobs_.find(id);
  if (found == jobs_.end()) return cancel_outcome::unknown;
  job_record& job = *found->second;
  if (job.state == job_state::queued) {
    queue_.erase({-job.priority, id});
    finish(job, job_state::cancelled);
    done_cv_.notify_all();
    return cancel_outcome::cancelled;
  }
  if (job.state == job_state::running ||
      job.state == job_state::cancelling) {
    job.cancel_requested.store(true, std::memory_order_relaxed);
    job.state = job_state::cancelling;
    return cancel_outcome::cancelling;
  }
  return cancel_outcome::finished;
}

std::size_t job_scheduler::cancel_all() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t touched = 0;
  // Queued jobs first. finish() runs the retention trim, which mutates
  // jobs_, so collect the ids before finishing any of them.
  std::vector<std::uint64_t> waiting;
  waiting.reserve(queue_.size());
  for (const auto& [neg_priority, id] : queue_) waiting.push_back(id);
  queue_.clear();
  for (const std::uint64_t id : waiting) {
    const auto found = jobs_.find(id);
    if (found == jobs_.end()) continue;
    finish(*found->second, job_state::cancelled);
    ++touched;
  }
  for (const auto& entry : jobs_) {
    job_record& job = *entry.second;
    if (job.state == job_state::running) {
      job.cancel_requested.store(true, std::memory_order_relaxed);
      job.state = job_state::cancelling;
      ++touched;
    }
  }
  if (touched > 0) done_cv_.notify_all();
  return touched;
}

scheduler_stats job_scheduler::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  scheduler_stats out = stats_;
  out.queued = queue_.size();
  return out;
}

// Caller holds mutex_. Runs the retention policy; a record pinned by an
// active wait() blocks the scan (wait() re-runs it on release).
void job_scheduler::trim_locked() {
  while (finished_.size() > options_.retain_finished) {
    const auto oldest = jobs_.find(finished_.front());
    if (oldest != jobs_.end() && oldest->second->waiters > 0) break;
    if (oldest != jobs_.end()) {
      // Forgetting a job drops its event history too (closing any
      // subscriber still attached): subscribe() answers for exactly the
      // jobs status answers for.
      events_.forget(oldest->first);
      jobs_.erase(oldest);
    }
    finished_.pop_front();
  }
}

// Caller holds mutex_. Mirrors the live queue/running levels into the
// metrics gauges (every mutation site calls this, so the gauges track
// scheduler_stats exactly).
void job_scheduler::sync_gauges_locked() {
  scheduler_metrics::get().queued.set(static_cast<double>(queue_.size()));
  scheduler_metrics::get().running.set(static_cast<double>(stats_.running));
}

// Caller holds mutex_. Marks a popped job running and closes its
// queue-wait span.
void job_scheduler::start_running_locked(job_record& job) {
  job.state = job_state::running;
  ++stats_.running;
  job.trace.ran = true;
  job.trace.queue_wait_seconds =
      seconds_between(job.submit_time, std::chrono::steady_clock::now());
  scheduler_metrics::get().queue_wait_seconds.observe(
      job.trace.queue_wait_seconds);
  publish_event_locked(job, "running", false, "");
  sync_gauges_locked();
}

// Caller holds mutex_. Transitions a job into a terminal state and runs
// the retention policy.
void job_scheduler::finish(job_record& job, job_state state) {
  if (job.state == job_state::running ||
      job.state == job_state::cancelling) {
    --stats_.running;
  }
  job.state = state;
  switch (state) {
    case job_state::done: ++stats_.completed; break;
    case job_state::failed: ++stats_.failed; break;
    case job_state::cancelled: ++stats_.cancelled; break;
    case job_state::timed_out: ++stats_.timed_out; break;
    default: break;
  }
  scheduler_metrics& metrics = scheduler_metrics::get();
  switch (state) {
    case job_state::done: metrics.completed.inc(); break;
    case job_state::failed: metrics.failed.inc(); break;
    case job_state::cancelled: metrics.cancelled.inc(); break;
    case job_state::timed_out: metrics.timed_out.inc(); break;
    default: break;
  }
  job.trace.total_seconds =
      seconds_between(job.submit_time, std::chrono::steady_clock::now());
  metrics.duration_seconds.observe(job.trace.total_seconds);
  if (options_.slow_request_ms > 0 &&
      job.trace.total_seconds * 1000.0 >=
          static_cast<double>(options_.slow_request_ms)) {
    logging::event(logging::level::warn, "scheduler", "slow_request")
        .field("trace_id", format_trace_id(job.trace.trace_id))
        .field("job", job.id)
        .field("kind", job.kind)
        .field("state", job_state_name(state))
        .field("total_ms", job.trace.total_seconds * 1000.0)
        .field("queue_wait_ms", job.trace.queue_wait_seconds * 1000.0)
        .field("engine_ms", job.trace.spans.engine_seconds * 1000.0);
  }
  // The terminal event goes out BEFORE the retention trim below so the
  // stream can never be forgotten with its ending unpublished. A done
  // job's body is rendered lazily: with no subscriber ever attaching,
  // the result payload is never serialized a second time.
  if (state == job_state::done) {
    events_.publish_lazy(
        job.id, "done", true,
        [payload = result_payload{job.kind, job.sweep, job.refined,
                                  job.report_topped_up}] {
          return json_fragment([&payload](json_writer& json) {
            write_result_fields(json, payload);
          });
        });
  } else if (state == job_state::failed || state == job_state::timed_out) {
    const std::string& error = job.error;
    publish_event_locked(job, job_state_name(state), true,
                         json_fragment([&error](json_writer& json) {
                           json.field("error", error);
                         }));
  } else {
    publish_event_locked(job, job_state_name(state), true, "");
  }
  finished_.push_back(job.id);
  trim_locked();
  sync_gauges_locked();
}

void job_scheduler::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;
    const std::shared_ptr<job_record> head = jobs_.at(queue_.begin()->second);
    if (head->has_deadline &&
        std::chrono::steady_clock::now() >= head->deadline) {
      // Expired while waiting: never spend engine time on a job whose
      // client already gave up on it.
      queue_.erase(queue_.begin());
      finish(*head, job_state::timed_out);
      done_cv_.notify_all();
      continue;
    }
    if (head->kind == "sweep") {
      run_sweep_batch(lock);
    } else {
      queue_.erase(queue_.begin());
      start_running_locked(*head);
      run_refine(lock, head);
    }
    done_cv_.notify_all();
  }
}

// Caller holds `lock`. The batching stage: drains the maximal sweep
// PREFIX of the priority-ordered queue into one sweep_service evaluation
// (stopping at the first queued non-sweep job, so a higher-priority
// refine is never overtaken by lower-priority sweeps riding the batch);
// concurrent clients thus share one engine run and duplicate points
// across jobs compute once.
void job_scheduler::run_sweep_batch(std::unique_lock<std::mutex>& lock) {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<job_record>> batch;
  std::vector<service::point_query> combined;
  std::vector<std::size_t> offsets;
  for (auto it = queue_.begin(); it != queue_.end();) {
    const std::shared_ptr<job_record> job = jobs_.at(it->second);
    if (job->kind != "sweep") break;
    it = queue_.erase(it);
    if (job->has_deadline && now >= job->deadline) {
      finish(*job, job_state::timed_out);
      continue;
    }
    start_running_locked(*job);
    offsets.push_back(combined.size());
    combined.insert(combined.end(), job->queries.begin(),
                    job->queries.end());
    batch.push_back(job);
  }
  if (batch.empty()) return;  // every queued sweep had already expired
  ++stats_.sweep_batches;
  stats_.sweep_jobs_batched += batch.size();
  scheduler_metrics::get().sweep_batches.inc();
  scheduler_metrics::get().sweep_jobs_batched.inc(batch.size());

  lock.unlock();
  service::sweep_response response;
  service::eval_trace batch_trace;
  bool batch_failed = false;
  // Per-job fallback responses when the combined evaluation throws: one
  // client's bad request (e.g. an impossible code length that only fails
  // in the engine) must not poison the other coalesced jobs -- and one
  // job's cancel/deadline must not discard its batchmates' work -- so
  // each job re-evaluates alone with only its own check and carries only
  // its own diagnostic. Payload purity makes the solo rerun bit-identical
  // to its share of the batch, and the store makes the rerun cheap (the
  // aborted batch's completed points were already inserted).
  enum class outcome { ok, failed, cancelled, timed_out };
  std::vector<service::sweep_response> solo(batch.size());
  std::vector<service::eval_trace> solo_trace(batch.size());
  std::vector<outcome> solo_outcome(batch.size(), outcome::ok);
  std::vector<std::string> solo_error(batch.size());
  const auto batch_check = [&batch] {
    const auto poll = std::chrono::steady_clock::now();
    for (const std::shared_ptr<job_record>& job : batch) {
      if (job->cancel_requested.load(std::memory_order_relaxed)) {
        throw cancelled_error("job " + std::to_string(job->id) +
                              " cancelled");
      }
      if (job->has_deadline && poll >= job->deadline) {
        throw timeout_error("job " + std::to_string(job->id) +
                            " deadline expired");
      }
    }
  };
  try {
    NWDEC_FAILPOINT("api.job.sweep.evaluate");
    response = service_.evaluate(combined, batch_check, &batch_trace);
  } catch (const std::exception&) {
    batch_failed = true;
    for (std::size_t b = 0; b < batch.size(); ++b) {
      const std::shared_ptr<job_record>& job = batch[b];
      const auto check = [&job] {
        if (job->cancel_requested.load(std::memory_order_relaxed)) {
          throw cancelled_error("job cancelled");
        }
        if (job->has_deadline &&
            std::chrono::steady_clock::now() >= job->deadline) {
          throw timeout_error("job deadline expired");
        }
      };
      try {
        NWDEC_FAILPOINT("api.job.sweep.evaluate");
        solo[b] = service_.evaluate(job->queries, check, &solo_trace[b]);
      } catch (const cancelled_error&) {
        solo_outcome[b] = outcome::cancelled;
      } catch (const timeout_error& failure) {
        solo_outcome[b] = outcome::timed_out;
        solo_error[b] = failure.what();
      } catch (const std::exception& failure) {
        solo_outcome[b] = outcome::failed;
        solo_error[b] = failure.what();
      }
    }
  }
  lock.lock();

  for (std::size_t b = 0; b < batch.size(); ++b) {
    job_record& job = *batch[b];
    // A solo rerun's spans are its own; batched jobs share the batch's
    // evaluation spans (that evaluation IS their execution).
    if (batch_failed) {
      job.trace.batch_jobs = 1;
      job.trace.batch_points = job.queries.size();
      job.trace.spans = solo_trace[b];
    } else {
      job.trace.batch_jobs = batch.size();
      job.trace.batch_points = combined.size();
      job.trace.spans = batch_trace;
    }
    if (batch_failed && solo_outcome[b] != outcome::ok) {
      job.error = solo_error[b];
      finish(job, solo_outcome[b] == outcome::cancelled
                      ? job_state::cancelled
                      : solo_outcome[b] == outcome::timed_out
                            ? job_state::timed_out
                            : job_state::failed);
      continue;
    }
    // Slice this job's points back out (or take its solo rerun) and
    // rebuild its wrapper counts from the per-point provenance.
    auto sliced = std::make_shared<service::sweep_response>();
    if (batch_failed) {
      sliced->points = std::move(solo[b].points);
    } else {
      const std::size_t begin = offsets[b];
      const std::size_t count = job.queries.size();
      sliced->points.assign(response.points.begin() + begin,
                            response.points.begin() + begin + count);
    }
    for (const service::sweep_response_entry& entry : sliced->points) {
      switch (entry.source) {
        case service::point_source::cached: ++sliced->cached; break;
        case service::point_source::topped_up: ++sliced->topped_up; break;
        case service::point_source::computed: ++sliced->computed; break;
      }
    }
    job.sweep = std::move(sliced);
    job.progress_done = job.progress_total;
    finish(job, job_state::done);
  }
}

// Caller holds `lock`; the job is already marked running.
void job_scheduler::run_refine(std::unique_lock<std::mutex>& lock,
                               const std::shared_ptr<job_record>& job) {
  lock.unlock();
  service::refine_result refined;
  enum class outcome { ok, failed, cancelled, timed_out };
  outcome result = outcome::ok;
  std::string error;
  const auto check = [&job] {
    if (job->cancel_requested.load(std::memory_order_relaxed)) {
      throw cancelled_error("job cancelled");
    }
    if (job->has_deadline &&
        std::chrono::steady_clock::now() >= job->deadline) {
      throw timeout_error("job deadline expired");
    }
  };
  const auto refine_start = std::chrono::steady_clock::now();
  try {
    refined = service::refine(
        service_, job->refinement,
        [this, job](std::size_t evaluations) {
          const std::lock_guard<std::mutex> progress_lock(mutex_);
          job->progress_done = evaluations;
          publish_event_locked(*job, "progress", false,
                               json_fragment([&](json_writer& json) {
                                 json.field("done", evaluations);
                                 json.field("total", job->progress_total);
                               }));
        },
        check);
  } catch (const cancelled_error&) {
    result = outcome::cancelled;
  } catch (const timeout_error& failure) {
    result = outcome::timed_out;
    error = failure.what();
  } catch (const std::exception& failure) {
    result = outcome::failed;
    error = failure.what();
  }
  lock.lock();
  // Refine probes all funnel through the shared store; the whole wall is
  // the engine span (refine has no finer instrumented spans).
  job->trace.batch_jobs = 1;
  job->trace.spans.engine_seconds =
      seconds_between(refine_start, std::chrono::steady_clock::now());
  switch (result) {
    case outcome::ok:
      job->refined =
          std::make_shared<const service::refine_result>(std::move(refined));
      finish(*job, job_state::done);
      break;
    case outcome::cancelled:
      finish(*job, job_state::cancelled);
      break;
    case outcome::timed_out:
      job->error = error;
      finish(*job, job_state::timed_out);
      break;
    case outcome::failed:
      job->error = error;
      finish(*job, job_state::failed);
      break;
  }
}

}  // namespace nwdec::api
