// api::socket_server -- the listener/lifecycle chassis shared by every
// socket front end of the service (the raw NDJSON tcp_transport and the
// HTTP/1.1 http_transport).
//
// The chassis owns everything that is protocol-independent and easy to
// get wrong twice: bind/listen (IPv4 any, SO_REUSEADDR, ephemeral-port
// reporting), the accept loop with its async-signal-safe shutdown wake
// pipe, connection registration and accept-shedding at max_connections,
// one detached thread per connection with deregister-before-close
// bookkeeping, and graceful drain (half-close, bounded wait, the
// drain-deadline action, force-close). A protocol front end derives and
// implements exactly two things: serve_connection() -- the per-
// connection read/answer loop -- and shed_response() -- the bytes an
// over-cap connection is answered with before closing (an NDJSON error
// line or an HTTP 503, each in its own protocol).
//
// The per-connection resource bounds (tcp_limits) are shared verbatim
// across protocols: the same --idle-timeout-ms / --read-deadline-ms /
// --max-request-bytes / --max-connections / --drain-ms configuration
// protects the NDJSON socket and the HTTP gateway alike.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "api/transport.h"

namespace nwdec::api {

/// Per-connection resource bounds (see tcp_transport.h for the error
/// code each bound answers with on the NDJSON protocol; the HTTP
/// gateway maps them onto status codes). The defaults keep the PR 4
/// behavior: no timeouts, no connection cap, a 4 MiB request cap,
/// immediate shutdown.
struct tcp_limits {
  /// Close a connection that sends no bytes for this long (0 = never).
  int idle_timeout_ms = 0;
  /// Close a connection whose partial request is this old (0 = never).
  /// Defeats slowloris peers that dribble bytes forever.
  int read_deadline_ms = 0;
  /// Error out a request past this many bytes.
  std::size_t max_request_bytes = std::size_t{4} << 20;  // 4 MiB
  /// Shed accepts past this many live connections (0 = unbounded).
  std::size_t max_connections = 0;
  /// Graceful-drain window on shutdown: half-close connections, wait
  /// this long for in-flight requests to finish, then force-close
  /// (0 = force-close immediately, the PR 4 behavior).
  int drain_ms = 0;
};

class socket_server : public transport {
 public:
  /// Binds and listens immediately (so port() is valid before serve());
  /// port 0 picks an ephemeral port. Throws nwdec::error on any socket
  /// failure.
  socket_server(std::uint16_t port, int backlog, tcp_limits limits);
  ~socket_server() override;
  socket_server(const socket_server&) = delete;
  socket_server& operator=(const socket_server&) = delete;

  /// The bound port (the ephemeral pick when constructed with 0).
  std::uint16_t port() const { return port_; }

  /// Accept loop; returns 0 after shutdown() completes it.
  int serve(line_handler& handler) override;

  /// Requests serve() to stop; safe from any thread, idempotent.
  void shutdown();

  /// Write end of the shutdown wake pipe: write(shutdown_fd(), "x", 1)
  /// is the async-signal-safe equivalent of shutdown() for use inside a
  /// signal handler.
  int shutdown_fd() const { return wake_write_; }

  /// True once shutdown has been observed by serve(): connection loops
  /// use it to stop starting long-lived work (an SSE pump checks it so a
  /// stream can end even if its subscription never closes).
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Runs once when serve() begins shutting down, BEFORE connections are
  /// half-closed -- the daemon wires it to close the scheduler's event
  /// streams so subscription-pumping connection threads can drain like
  /// any other in-flight request. Set before serve(); called without
  /// transport locks held.
  void set_drain_start_action(std::function<void()> action) {
    drain_start_action_ = std::move(action);
  }

  /// Runs when the drain window expires with connections still busy --
  /// before they are force-closed. The daemon points this at the
  /// scheduler's cancel_all() so a connection thread blocked inside a
  /// long synchronous evaluation is released cooperatively (a force-
  /// closed socket alone cannot unblock a thread waiting on a job).
  /// Set before serve(); called without transport locks held.
  void set_drain_deadline_action(std::function<void()> action) {
    drain_deadline_action_ = std::move(action);
  }

 protected:
  const tcp_limits& limits() const { return limits_; }

  /// The per-connection protocol loop. Runs on a detached thread; must
  /// NOT close `client` or touch the registration bookkeeping -- the
  /// chassis deregisters and closes after it returns.
  virtual void serve_connection(int client, line_handler& handler) = 0;

  /// The bytes an accept past max_connections is answered with before
  /// the immediate close (protocol-appropriate: an NDJSON
  /// "too_many_connections" error line, an HTTP 503).
  virtual std::string shed_response() const = 0;

 private:
  int listen_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::uint16_t port_ = 0;
  tcp_limits limits_;
  std::atomic<bool> draining_{false};
  std::function<void()> drain_start_action_;
  std::function<void()> drain_deadline_action_;

  // Connection threads run detached (a long-lived daemon must not hoard
  // one joinable thread per connection ever served); serve() instead
  // counts them and blocks on idle_cv_ until the last one deregisters.
  std::mutex mutex_;  ///< guards clients_ and active_
  std::condition_variable idle_cv_;
  std::vector<int> clients_;
  std::size_t active_ = 0;
};

}  // namespace nwdec::api
