#include "api/metrics_http.h"

#include "util/metrics.h"

namespace nwdec::api {

namespace {

std::string http_response(const char* status, const std::string& body) {
  return std::string("HTTP/1.0 ") + status +
         "\r\n"
         "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
         "Content-Length: " +
         std::to_string(body.size()) +
         "\r\n"
         "Connection: close\r\n"
         "\r\n" +
         body;
}

}  // namespace

std::string metrics_http_handler::handle_line(const std::string& line) {
  // The request target ends at the space before the HTTP version; a bare
  // "GET /metrics" (no version, e.g. hand-typed into nc) is accepted too.
  const std::string target_and_version =
      line.rfind("GET ", 0) == 0 ? line.substr(4) : std::string();
  const std::string target =
      target_and_version.substr(0, target_and_version.find(' '));
  if (line.rfind("GET ", 0) != 0) {
    return http_response("400 Bad Request", "expected: GET /metrics\n");
  }
  if (target != "/metrics") {
    return http_response("404 Not Found", "unknown path '" + target +
                                              "' (try /metrics)\n");
  }
  metrics::registry& registry = metrics::registry::global();
  registry.get_gauge("nwdec_uptime_seconds").set(registry.uptime_seconds());
  return http_response("200 OK",
                       metrics::to_prometheus(registry.snapshot()));
}

}  // namespace nwdec::api
