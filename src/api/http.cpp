#include "api/http.h"

#include <algorithm>
#include <cctype>

namespace nwdec::api::http {

namespace {

bool iequals(const std::string& a, const std::string& b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

std::string trimmed(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t')) ++begin;
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace

std::string request::header(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return value;
  }
  return "";
}

std::string request::path() const {
  const std::size_t query = target.find('?');
  return query == std::string::npos ? target : target.substr(0, query);
}

std::string request::query_param(const std::string& name) const {
  const std::size_t query = target.find('?');
  if (query == std::string::npos) return "";
  std::size_t cursor = query + 1;
  while (cursor < target.size()) {
    std::size_t end = target.find('&', cursor);
    if (end == std::string::npos) end = target.size();
    const std::size_t equals = target.find('=', cursor);
    if (equals != std::string::npos && equals < end &&
        target.compare(cursor, equals - cursor, name) == 0) {
      return target.substr(equals + 1, end - equals - 1);
    }
    cursor = end + 1;
  }
  return "";
}

request_parser::request_parser(std::size_t max_bytes)
    : max_bytes_(max_bytes) {}

void request_parser::fail(int status, std::string reason) {
  phase_ = phase::failed;
  error_status_ = status;
  error_reason_ = std::move(reason);
}

request_parser::phase request_parser::consume(const char* data,
                                              std::size_t size) {
  if (phase_ == phase::complete || phase_ == phase::failed) return phase_;
  buffer_.append(data, size);
  advance();
  return phase_;
}

// Parses the head lines in buffer_[0, head_end). Returns false after
// fail()ing.
bool request_parser::parse_head(std::size_t head_end) {
  // Request line: METHOD SP TARGET SP VERSION. Tolerate a bare-LF
  // terminator (head_end already excludes it); strip a trailing CR.
  std::size_t line_end = buffer_.find('\n');
  std::string line = buffer_.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    fail(400, "malformed request line");
    return false;
  }
  parsed_.method = line.substr(0, sp1);
  parsed_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  parsed_.version = trimmed(line.substr(sp2 + 1));
  if (parsed_.method.empty() || parsed_.target.empty() ||
      parsed_.target[0] != '/') {
    fail(400, "malformed request line");
    return false;
  }
  if (parsed_.version != "HTTP/1.1" && parsed_.version != "HTTP/1.0") {
    fail(505, "only HTTP/1.1 and HTTP/1.0 are supported");
    return false;
  }
  // Header lines until the blank line.
  std::size_t cursor = line_end + 1;
  while (cursor < head_end) {
    std::size_t next = buffer_.find('\n', cursor);
    if (next == std::string::npos || next > head_end) next = head_end;
    std::string field = buffer_.substr(cursor, next - cursor);
    if (!field.empty() && field.back() == '\r') field.pop_back();
    cursor = next + 1;
    if (field.empty()) break;
    const std::size_t colon = field.find(':');
    if (colon == std::string::npos || colon == 0) {
      fail(400, "malformed header line");
      return false;
    }
    parsed_.headers.emplace_back(field.substr(0, colon),
                                 trimmed(field.substr(colon + 1)));
  }
  // Connection semantics.
  const std::string connection = parsed_.header("Connection");
  if (parsed_.version == "HTTP/1.0") {
    parsed_.keep_alive = iequals(connection, "keep-alive");
  } else {
    parsed_.keep_alive = !iequals(connection, "close");
  }
  // Body framing: Content-Length only. Transfer-Encoding would demand a
  // dechunker for request bodies nothing sends; refuse it explicitly.
  if (!parsed_.header("Transfer-Encoding").empty()) {
    fail(411, "Transfer-Encoding request bodies are not supported; send "
              "a Content-Length");
    return false;
  }
  const std::string length = parsed_.header("Content-Length");
  body_needed_ = 0;
  if (!length.empty()) {
    std::size_t value = 0;
    for (const char c : length) {
      if (c < '0' || c > '9' || value > (std::size_t{1} << 40)) {
        fail(400, "malformed Content-Length");
        return false;
      }
      value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    body_needed_ = value;
  }
  return true;
}

void request_parser::advance() {
  if (phase_ == phase::head) {
    // The head ends at the first blank line (CRLFCRLF, or bare LFLF).
    std::size_t head_end = std::string::npos;
    std::size_t head_len = 0;
    const std::size_t crlf = buffer_.find("\r\n\r\n");
    const std::size_t lflf = buffer_.find("\n\n");
    if (crlf != std::string::npos &&
        (lflf == std::string::npos || crlf + 1 < lflf)) {
      head_end = crlf;
      head_len = crlf + 4;
    } else if (lflf != std::string::npos) {
      head_end = lflf;
      head_len = lflf + 2;
    }
    if (head_end == std::string::npos) {
      if (max_bytes_ > 0 && buffer_.size() > max_bytes_) {
        fail(413, "request head exceeds the transport's byte cap");
      }
      return;
    }
    if (!parse_head(head_end + 1)) return;
    buffer_.erase(0, head_len);
    if (max_bytes_ > 0 && body_needed_ > max_bytes_) {
      fail(413, "request body exceeds the transport's byte cap");
      return;
    }
    phase_ = phase::body;
  }
  if (phase_ == phase::body) {
    if (buffer_.size() < body_needed_) return;
    parsed_.body = buffer_.substr(0, body_needed_);
    buffer_.erase(0, body_needed_);
    phase_ = phase::complete;
  }
}

void request_parser::reset() {
  parsed_ = request{};
  body_needed_ = 0;
  error_status_ = 0;
  error_reason_.clear();
  phase_ = phase::head;
  // Re-parse pipelined leftovers already buffered.
  if (!buffer_.empty()) advance();
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Status";
  }
}

std::string response(int status, const std::string& content_type,
                     const std::string& body, bool keep_alive,
                     const std::vector<std::string>& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    reason_phrase(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  for (const std::string& header : extra_headers) {
    out += header + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

int status_for_code(const std::string& code, bool ok) {
  if (ok) return 200;
  if (code == "overloaded" || code == "draining" ||
      code == "too_many_connections") {
    return 503;
  }
  if (code == "payload_too_large") return 413;
  if (code == "read_timeout" || code == "idle_timeout") return 408;
  if (code == "timed_out") return 504;
  if (code == "request_id_conflict") return 409;
  return 400;
}

}  // namespace nwdec::api::http
