#include "api/event_bus.h"

#include <chrono>
#include <utility>

#include "util/metrics.h"

namespace nwdec::api {

namespace {

struct bus_metrics {
  metrics::counter& published;
  metrics::counter& delivered;
  metrics::counter& overflows;

  static bus_metrics& get() {
    static bus_metrics instance = [] {
      metrics::registry& reg = metrics::registry::global();
      return bus_metrics{
          reg.get_counter("nwdec_events_published_total"),
          reg.get_counter("nwdec_events_delivered_total"),
          reg.get_counter("nwdec_event_subscribers_evicted_total")};
    }();
    return instance;
  }
};

std::string render_line(std::uint64_t job, std::uint64_t seq,
                        const std::string& type, const std::string& body) {
  // The envelope members are fixed tokens and integers; `body` is a
  // pre-rendered ","-led fragment (api::json_fragment), so plain
  // concatenation is already well-formed JSON.
  return "{\"job\":" + std::to_string(job) +
         ",\"seq\":" + std::to_string(seq) + ",\"event\":\"" + type + "\"" +
         body + "}\n";
}

}  // namespace

std::optional<job_event> event_subscription::next(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
               [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;
  job_event event = std::move(queue_.front());
  queue_.pop_front();
  return event;
}

bool event_subscription::closed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return closed_ && queue_.empty();
}

std::uint64_t event_bus::publish(std::uint64_t job, const char* type,
                                 bool terminal, std::string body) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return publish_locked(job, type, terminal, std::move(body), nullptr);
}

std::uint64_t event_bus::publish_lazy(std::uint64_t job, const char* type,
                                      bool terminal, body_fn body) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return publish_locked(job, type, terminal, "", std::move(body));
}

const std::string& event_bus::line_of(std::uint64_t job,
                                      stored_event& event) {
  if (event.line.empty()) {
    const std::string body = event.lazy ? event.lazy() : "";
    event.line = render_line(job, event.seq, event.type, body);
    event.lazy = nullptr;
  }
  return event.line;
}

void event_bus::push_to(const std::shared_ptr<event_subscription>& subscriber,
                        const job_event& event) {
  const std::lock_guard<std::mutex> lock(subscriber->mutex_);
  if (subscriber->closed_) return;
  if (subscriber->queue_.size() >= subscriber->capacity_) {
    // Slow-consumer eviction: drop the backlog this subscriber never
    // read, replace it with one closing diagnostic, and close. The
    // client resubscribes from its last PROCESSED seq; the replay then
    // delivers everything the eviction dropped.
    const std::size_t dropped = subscriber->queue_.size();
    subscriber->queue_.clear();
    job_event overflow;
    overflow.job = event.job;
    overflow.seq = event.seq;
    overflow.type = "event_overflow";
    overflow.closing = true;
    overflow.line = render_line(
        event.job, event.seq, "event_overflow",
        ",\"code\":\"event_overflow\",\"dropped\":" + std::to_string(dropped));
    subscriber->queue_.push_back(std::move(overflow));
    subscriber->closed_ = true;
    bus_metrics::get().overflows.inc();
    subscriber->cv_.notify_all();
    return;
  }
  subscriber->queue_.push_back(event);
  if (event.terminal || event.closing) subscriber->closed_ = true;
  bus_metrics::get().delivered.inc();
  subscriber->cv_.notify_all();
}

// Caller holds mutex_. The one append path: sequence assignment, body
// rendering, history append, and fan-out happen atomically, so delivery
// order always equals sequence order.
std::uint64_t event_bus::publish_locked(std::uint64_t job, const char* type,
                                        bool terminal, std::string body,
                                        body_fn lazy) {
  stream& entry = streams_[job];
  stored_event event;
  event.seq = entry.next_seq++;
  event.type = type;
  event.terminal = terminal;
  bus_metrics::get().published.inc();

  // Prune dead/closed subscribers, keep the live ones.
  std::vector<std::shared_ptr<event_subscription>> live;
  live.reserve(entry.subscribers.size());
  for (const std::weak_ptr<event_subscription>& weak : entry.subscribers) {
    const std::shared_ptr<event_subscription> subscriber = weak.lock();
    if (subscriber == nullptr) continue;
    {
      const std::lock_guard<std::mutex> lock(subscriber->mutex_);
      if (subscriber->closed_) continue;
    }
    live.push_back(subscriber);
  }

  if (lazy != nullptr && live.empty()) {
    // Nobody is watching: keep the body unrendered. A terminal `done`
    // body is the full result payload, so jobs without subscribers never
    // pay the render; the first replay that needs it materializes it.
    event.lazy = std::move(lazy);
  } else {
    if (lazy != nullptr) body = lazy();
    event.line = render_line(job, event.seq, type, body);
  }

  if (!live.empty()) {
    job_event out;
    out.job = job;
    out.seq = event.seq;
    out.type = event.type;
    out.terminal = terminal;
    out.line = event.line;
    for (const std::shared_ptr<event_subscription>& subscriber : live) {
      push_to(subscriber, out);
    }
  }

  entry.subscribers.clear();
  if (!terminal) {
    for (const std::shared_ptr<event_subscription>& subscriber : live) {
      entry.subscribers.push_back(subscriber);
    }
  }
  if (terminal) entry.terminal = true;
  const std::uint64_t seq = event.seq;
  entry.history.push_back(std::move(event));
  return seq;
}

std::shared_ptr<event_subscription> event_bus::subscribe(
    std::uint64_t job, std::uint64_t from_seq) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = streams_.find(job);
  if (found == streams_.end()) return nullptr;
  stream& entry = found->second;

  auto subscriber = std::make_shared<event_subscription>();
  subscriber->capacity_ = options_.subscriber_capacity;
  subscriber->job_ = job;
  // Replay bypasses the capacity bound: history length is bounded by the
  // job's lifecycle (a handful of events plus refine progress), and a
  // replay that evicted its own subscriber could never catch up.
  for (stored_event& event : entry.history) {
    if (event.seq <= from_seq) continue;
    job_event out;
    out.job = job;
    out.seq = event.seq;
    out.type = event.type;
    out.terminal = event.terminal;
    out.line = line_of(job, event);
    subscriber->queue_.push_back(std::move(out));
    bus_metrics::get().delivered.inc();
  }
  if (entry.terminal) {
    // Subscribe-after-terminal: the replay (possibly empty, when the
    // client already saw everything) is all there will ever be.
    subscriber->closed_ = true;
  } else {
    entry.subscribers.emplace_back(subscriber);
  }
  return subscriber;
}

void event_bus::forget(std::uint64_t job) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = streams_.find(job);
  if (found == streams_.end()) return;
  for (const std::weak_ptr<event_subscription>& weak :
       found->second.subscribers) {
    if (const std::shared_ptr<event_subscription> subscriber = weak.lock()) {
      const std::lock_guard<std::mutex> sub_lock(subscriber->mutex_);
      subscriber->closed_ = true;
      subscriber->cv_.notify_all();
    }
  }
  streams_.erase(found);
}

void event_bus::close_all() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [job, entry] : streams_) {
    for (const std::weak_ptr<event_subscription>& weak : entry.subscribers) {
      const std::shared_ptr<event_subscription> subscriber = weak.lock();
      if (subscriber == nullptr) continue;
      const std::lock_guard<std::mutex> sub_lock(subscriber->mutex_);
      if (subscriber->closed_) continue;
      job_event drain;
      drain.job = job;
      drain.seq = entry.next_seq;  // not consumed: no stream gap results
      drain.type = "draining";
      drain.closing = true;
      drain.line = render_line(job, entry.next_seq, "draining",
                               ",\"code\":\"draining\"");
      subscriber->queue_.push_back(std::move(drain));
      subscriber->closed_ = true;
      subscriber->cv_.notify_all();
    }
    entry.subscribers.clear();
  }
}

std::size_t event_bus::history_size(std::uint64_t job) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = streams_.find(job);
  return found == streams_.end() ? 0 : found->second.history.size();
}

}  // namespace nwdec::api
